"""Across-trial vectorized simulation: M independent trials per sweep.

:class:`EnsembleSimulator` advances ``M`` independent trials ("lanes") of
one protocol at one population size simultaneously.  Each lane is the
**exact** multiset chain of a solo
:class:`~repro.engine.multiset.MultisetSimulator` with that lane's seed:
it consumes the same PCG64 draw stream in the same refill pattern and
maps every scheduler ticket through the same count-ordered inverse CDF,
so per-lane trajectories and stabilization step counts are bit-identical
to solo runs (pinned by ``tests/engine/test_ensemble.py``).  What is
vectorized is everything *across* lanes:

* configurations live in row-per-lane NumPy arrays — ``A`` holds every
  agent's lane-local state id in sorted order (``(M, n)``), ``F`` the
  inclusive prefix counts per local id (``(M, num_states)``) — so the
  initiator of lane ``i`` is the single gather ``A[i, ticket]``;
* transitions resolve through shared, pair-indexed
  :class:`~repro.engine.ensemble.tables.PairTables` built over one
  :class:`~repro.engine.cache.TransitionCache`: one gather yields every
  lane's packed post pair and leader-count delta;
* applied transitions move one agent between sorted blocks by rewriting
  only the block-boundary slots between the two state ids (see
  :class:`~repro.engine.ensemble.lane.SlotLane` for the scalar form of
  the same update);
* each sweep looks ahead up to ``k`` draws per lane under the frozen
  configuration and commits the leading run of null interactions plus
  the first active one — exact, because null interactions do not change
  the configuration the lookahead was computed against.  ``k`` adapts to
  the observed null rate, so quiet protocols (Angluin is ~94% null)
  commit long runs per sweep while busy ones pay for no lookahead.

Lanes retire the moment their leader count first hits the target; their
rows are compacted away and their exact stabilization step count is
reported.  Because per-sweep NumPy dispatch overhead is fixed while the
committed work scales with the surviving lane count, the last few
straggler lanes detach into scalar :class:`SlotLane` continuations — the
same chain, same draws, byte-identical outcomes — instead of paying
vector overhead for two lanes.  Outcomes therefore never depend on lane
packing, sweep schedule, or detach timing; only wall-clock does.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.engine.ensemble.lane import SlotLane
from repro.engine.ensemble.tables import PairTables, PairTableOverflow
from repro.engine.interner import StateInterner
from repro.engine.kernel import make_transition_cache
from repro.engine.multiset import DRAW_BATCH_SIZE
from repro.engine.protocol import LEADER, Protocol, State
from repro.errors import ConvergenceError, SimulationError
from repro.telemetry.core import cache_summary, telemetry_enabled
from repro.telemetry.heartbeat import make_heartbeat
from repro.telemetry.probe import make_phase_series
from repro.telemetry.profile import StageProfile, emit_profile
from repro.telemetry.trace import make_tracer

__all__ = ["EnsembleLaneSimulator", "EnsembleSimulator", "LaneOutcome"]

#: Below this many surviving lanes the vectorized sweep detaches the rest
#: into scalar SlotLane continuations (fixed NumPy dispatch overhead per
#: sweep stops amortizing).  Purely a performance knob: outcomes are
#: identical either side of it.
DEFAULT_DETACH_LANES = 24

#: Minimum interactions a sweep must commit (summed over lanes) for the
#: lockstep path to keep paying for itself.  Sweep cost is dominated by
#: fixed NumPy dispatch, so its per-interaction price is
#: ``sweep_cost / committed``: interaction-heavy protocols (PLL commits
#: ~1 per lane per sweep) fall below this line and the whole ensemble
#: detaches to scalar lanes, while null-heavy ones (Angluin commits
#: tens per lane) stay vectorized.  Purely a performance knob, measured
#: per run from the engine's own commit counters; outcomes are
#: identical either side of it.  0 disables the policy.
DEFAULT_DETACH_WORK = 128

#: Lookahead window bounds; the window adapts inside them.
_MIN_LOOKAHEAD = 1
_MAX_LOOKAHEAD = 64


@dataclass(frozen=True)
class LaneOutcome:
    """One lane's exact stabilization measurement."""

    index: int
    seed: int | None
    steps: int
    leader_count: int
    distinct_states: int


class EnsembleSimulator:
    """Advance many same-protocol trials in lockstep NumPy sweeps."""

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seeds: Sequence[int | None],
        *,
        cache_entries: int = 1 << 20,
        target: int = 1,
        lookahead: int = 4,
        detach_lanes: int = DEFAULT_DETACH_LANES,
        detach_work: int = DEFAULT_DETACH_WORK,
        telemetry: bool | None = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"population needs at least 2 agents, got n={n}")
        if not seeds:
            raise SimulationError("an ensemble needs at least one lane seed")
        self.protocol = protocol
        self.n = n
        self.seeds = list(seeds)
        self.target = target
        self.interner = StateInterner()
        self.cache = make_transition_cache(
            protocol, self.interner, cache_entries
        )
        self._tables = PairTables(protocol, self.interner, self.cache)
        self._detach_lanes = detach_lanes
        self._detach_work = detach_work
        self._starved = False
        self._k = max(_MIN_LOOKAHEAD, min(int(lookahead), _MAX_LOOKAHEAD))
        self._telemetry = telemetry
        # Sweep/retire stage profile (gated wall-clock tier).  Packed
        # lanes carry no phase series: per-lane phase timelines would
        # depend on sweep packing, and store rows must stay
        # packing-independent — the lane facade below probes instead.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        if hasattr(self.cache, "profile"):
            self.cache.profile = self._profile
        self.sweeps = 0
        self._commit_sum = 0
        self._commit_rows = 0
        self._window_sweeps = 0
        #: Monotone total of interactions committed by vectorized sweeps.
        #: ``_steps.sum()`` is NOT monotone — retired rows are compacted
        #: away — so heartbeats and summaries read this instead.
        self.committed_steps = 0
        #: Lanes retired at their exact stabilization step.
        self.retired_lanes = 0
        #: Lanes handed to scalar SlotLane continuations.
        self.detached_lanes = 0

        initial_global = self.interner.intern(protocol.initial_state())
        if initial_global != 0:  # pragma: no cover - fresh interner
            raise SimulationError("fresh interner must assign id 0 first")
        M = len(self.seeds)
        B = DRAW_BATCH_SIZE
        self._B = B
        self._rngs = [np.random.default_rng(seed) for seed in self.seeds]
        self._D1 = np.empty((M, B), dtype=np.int64)
        self._D2 = np.empty((M, B), dtype=np.int64)
        for row, rng in enumerate(self._rngs):
            self._D1[row] = rng.integers(0, n, size=B)
            self._D2[row] = rng.integers(0, n - 1, size=B)
        self._cursor = np.zeros(M, dtype=np.int64)
        self._Sl = 16
        self._A = np.zeros((M, n), dtype=np.int64)
        self._F = np.full((M, self._Sl), n, dtype=np.int64)
        self._nloc = np.ones(M, dtype=np.int64)
        self._l2g = np.zeros((M, self._Sl), dtype=np.int64)
        self._g2l = np.full((M, self._tables.cap), -1, dtype=np.int64)
        self._g2l[:, 0] = 0
        initially_leader = protocol.output(protocol.initial_state()) == LEADER
        self._lead = np.full(M, n if initially_leader else 0, dtype=np.int64)
        self._steps = np.zeros(M, dtype=np.int64)
        self._budget = np.zeros(M, dtype=np.int64)
        self._order = list(range(M))  # original lane index per row
        self._scalar: dict[int, SlotLane] | None = None

    # ------------------------------------------------------------------
    # introspection (primarily for tests and reporting)
    # ------------------------------------------------------------------

    @property
    def active_lanes(self) -> int:
        """Lanes still simulated (vectorized rows or scalar continuations)."""
        if self._scalar is not None:
            return len(self._scalar)
        return len(self._order)

    def lane_steps(self, index: int) -> int:
        """Interactions lane ``index`` has executed so far."""
        if self._scalar is not None:
            return self._scalar[index].steps
        return int(self._steps[self._order.index(index)])

    def lane_state_counts(self, index: int) -> Counter[State]:
        """Decoded state multiset of one lane's current configuration."""
        if self._scalar is not None:
            return self._scalar[index].state_counts()
        row = self._order.index(index)
        state_of = self.interner.state_of
        counts: Counter[State] = Counter()
        previous = 0
        for local in range(int(self._nloc[row])):
            boundary = int(self._F[row, local])
            count = boundary - previous
            previous = boundary
            if count:
                counts[state_of(int(self._l2g[row, local]))] = count
        return counts

    # ------------------------------------------------------------------
    # growth and compaction
    # ------------------------------------------------------------------

    def _grow_local(self, needed: int) -> None:
        if needed <= self._Sl:
            return
        cap = self._Sl
        while cap < needed:
            cap *= 2
        M = self._A.shape[0]
        F = np.full((M, cap), self.n, dtype=np.int64)
        F[:, : self._Sl] = self._F
        l2g = np.zeros((M, cap), dtype=np.int64)
        l2g[:, : self._Sl] = self._l2g
        self._F, self._l2g, self._Sl = F, l2g, cap

    def _grow_global(self) -> None:
        """Re-width ``g2l`` after the shared pair tables grew their cap."""
        cap = self._tables.cap
        if cap == self._g2l.shape[1]:
            return
        M = self._g2l.shape[0]
        g2l = np.full((M, cap), -1, dtype=np.int64)
        g2l[:, : self._g2l.shape[1]] = self._g2l
        self._g2l = g2l

    def _compact(self, keep: np.ndarray) -> None:
        self._A = self._A[keep]
        self._F = self._F[keep]
        self._l2g = self._l2g[keep]
        self._g2l = self._g2l[keep]
        self._D1 = self._D1[keep]
        self._D2 = self._D2[keep]
        self._cursor = self._cursor[keep]
        self._nloc = self._nloc[keep]
        self._lead = self._lead[keep]
        self._steps = self._steps[keep]
        self._budget = self._budget[keep]
        kept = keep.tolist()
        self._order = [o for o, k in zip(self._order, kept) if k]
        self._rngs = [r for r, k in zip(self._rngs, kept) if k]

    # ------------------------------------------------------------------
    # the vectorized sweep
    # ------------------------------------------------------------------

    def _apply_moves(self, rows: np.ndarray, src: np.ndarray, dst: np.ndarray) -> None:
        """Move one agent from local state ``src`` to ``dst`` per row.

        Rewrites the block-boundary slots between the two ids and shifts
        the prefix counts; processed for all rows at once.  ``rows`` must
        be distinct (one move per lane per phase).
        """
        moving = src != dst
        if not moving.any():
            return
        rows = rows[moving]
        src = src[moving]
        dst = dst[moving]
        up = (dst > src).astype(np.int64)
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        span = hi - lo
        F = self._F.ravel()
        A = self._A.ravel()
        wide = span > 1
        if wide.any():
            # Distance-1 moves dominate (PLL assigns consecutive timer
            # values adjacent local ids), so the occasional wide move
            # must not drag every row through the masked general path:
            # split, run the narrow fast path, recurse on the few wide
            # rows alone.
            narrow = ~wide
            if narrow.any():
                nrows = rows[narrow]
                nlo = lo[narrow]
                nup = up[narrow]
                findex = nrows * self._Sl + nlo
                boundary = F[findex]
                A[nrows * self.n + boundary - nup] = nlo + nup
                F[findex] += 1 - 2 * nup
            rows = rows[wide]
            up = up[wide]
            lo = lo[wide]
            hi = hi[wide]
            span = span[wide]
        else:
            findex = rows * self._Sl + lo
            boundary = F[findex]
            A[rows * self.n + boundary - up] = lo + up
            F[findex] += 1 - 2 * up  # -1 for up moves, +1 for down
            return
        width = int(span.max())
        offsets = np.arange(width, dtype=np.int64)
        inside = offsets[None, :] < span[:, None]
        y = np.where(inside, lo[:, None] + offsets[None, :], (hi - 1)[:, None])
        findex = rows[:, None] * self._Sl + y
        boundary = F[findex.ravel()].reshape(findex.shape)
        position = boundary - up[:, None]
        value = y + up[:, None]
        # Outside-the-span entries get per-row sentinels so duplicate-run
        # detection below never bridges real and padded cells.
        position = np.where(inside, position, -1 - rows[:, None])
        # Consecutive equal positions appear when intermediate states are
        # empty; the surviving write is the last (up) / first (down) of
        # the run — the order a scalar loop would apply them in.
        pad = np.full((position.shape[0], 1), -9, dtype=np.int64)
        following = np.concatenate([position[:, 1:], pad], axis=1)
        preceding = np.concatenate([pad, position[:, :-1]], axis=1)
        keep = np.where(
            up[:, None].astype(bool),
            position != following,
            position != preceding,
        )
        keep &= inside
        A[(rows[:, None] * self.n + position)[keep]] = value[keep]
        F[findex[inside]] += np.repeat(1 - 2 * up, span)

    def _sweep(self) -> None:
        """One lockstep advance: commit nulls + first active per lane."""
        M = self._A.shape[0]
        k = self._k
        n = self.n
        B = self._B
        rows = np.arange(M, dtype=np.int64)
        avail = np.minimum(B - self._cursor, np.int64(k))
        remaining = self._budget - self._steps
        np.minimum(avail, remaining, out=avail)
        offsets = np.arange(k, dtype=np.int64)
        window = offsets[None, :] < avail[:, None]
        ticket_index = np.minimum(self._cursor[:, None] + offsets[None, :], B - 1)
        flat_tickets = rows[:, None] * B + ticket_index
        d1 = self._D1.ravel().take(flat_tickets)
        d2 = self._D2.ravel().take(flat_tickets)
        row_agents = rows[:, None] * n
        row_states = rows[:, None] * self._Sl
        p0 = self._A.ravel().take(row_agents + d1)
        f0 = self._F.ravel().take(row_states + p0)
        j2 = d2 + (d2 >= f0 - 1)
        p1 = self._A.ravel().take(row_agents + j2)
        while True:
            g0 = self._l2g.ravel().take(row_states + p0)
            g1 = self._l2g.ravel().take(row_states + p1)
            cap = self._tables.cap
            keys = g0 * cap + g1
            if self._tables.ensure(keys.ravel()):
                break
            self._grow_global()
            row_states = rows[:, None] * self._Sl
        pair = self._tables.pair.take(keys)
        active = (pair != keys) & window
        has_active = active.any(axis=1)
        first = active.argmax(axis=1)
        commit = np.where(has_active, first + 1, avail)
        if has_active.any():
            arows = np.nonzero(has_active)[0]
            flat = arows * k + first[arows]
            term_p0 = p0.ravel()[flat]
            term_p1 = p1.ravel()[flat]
            term_key = keys.ravel()[flat]
            term_pair = pair.ravel()[flat]
            cap = self._tables.cap
            post0_global = term_pair // cap
            post1_global = term_pair % cap
            post0_local = self._localize(arows, post0_global)
            post1_local = self._localize(arows, post1_global)
            self._apply_moves(arows, term_p0, post0_local)
            self._apply_moves(arows, term_p1, post1_local)
            self._lead[arows] += self._tables.dmark.take(term_key)
        self._steps += commit
        self._cursor += commit
        exhausted_draws = self._cursor >= B
        if exhausted_draws.any():
            for row in np.nonzero(exhausted_draws)[0].tolist():
                rng = self._rngs[row]
                self._D1[row] = rng.integers(0, n, size=B)
                self._D2[row] = rng.integers(0, n - 1, size=B)
                self._cursor[row] = 0
        self.sweeps += 1
        committed = int(commit.sum())
        self.committed_steps += committed
        self._commit_sum += committed
        self._commit_rows += M
        self._window_sweeps += 1
        if self._window_sweeps >= 64:
            self._adapt_lookahead()

    def _localize(self, rows: np.ndarray, global_ids: np.ndarray) -> np.ndarray:
        """Lane-local ids for global post states, interning first sights.

        Callers pass initiator posts before responder posts, which is the
        order the solo interner sees new states in.
        """
        local = self._g2l[rows, global_ids]
        missing = local < 0
        if missing.any():
            self._grow_local(int(self._nloc[rows].max()) + 1)
            for row, gid in zip(rows[missing].tolist(), global_ids[missing].tolist()):
                if self._g2l[row, gid] >= 0:
                    continue
                new_local = int(self._nloc[row])
                self._grow_local(new_local + 1)
                self._g2l[row, gid] = new_local
                self._l2g[row, new_local] = gid
                self._nloc[row] = new_local + 1
            local = self._g2l[rows, global_ids]
        return local

    def _adapt_lookahead(self) -> None:
        if not self._commit_rows:
            return
        mean_commit = self._commit_sum / self._commit_rows
        window_grew = False
        if mean_commit > 0.6 * self._k and self._k < _MAX_LOOKAHEAD:
            self._k = min(self._k * 2, _MAX_LOOKAHEAD)
            window_grew = True
        elif mean_commit < 0.25 * self._k and self._k > _MIN_LOOKAHEAD:
            self._k = max(_MIN_LOOKAHEAD, self._k // 2)
        if self._detach_work and not window_grew:
            # Judge starvation only from windows where the lookahead had
            # stopped ramping: a quiet protocol's first windows commit
            # little merely because ``k`` starts small.
            per_sweep = self._commit_sum / self._window_sweeps
            self._starved = per_sweep < self._detach_work
        self._commit_sum = 0
        self._commit_rows = 0
        self._window_sweeps = 0

    # ------------------------------------------------------------------
    # detachment to scalar lanes
    # ------------------------------------------------------------------

    def _detach_row(self, row: int) -> SlotLane:
        nloc = int(self._nloc[row])
        return SlotLane.from_ensemble_row(
            protocol=self.protocol,
            n=self.n,
            seed=self.seeds[self._order[row]],
            cache=self.cache,
            target=self.target,
            slots=self._A[row].tolist(),
            prefix=self._F[row, :nloc].tolist(),
            local_globals=self._l2g[row, :nloc].tolist(),
            lead=int(self._lead[row]),
            steps=int(self._steps[row]),
            rng=self._rngs[row],
            d1=self._D1[row].tolist(),
            d2=self._D2[row].tolist(),
            cursor=int(self._cursor[row]),
        )

    def _detach_all(self) -> dict[int, SlotLane]:
        lanes = {
            self._order[row]: self._detach_row(row)
            for row in range(len(self._order))
        }
        self.detached_lanes += len(lanes)
        self._compact(np.zeros(len(self._order), dtype=bool))
        self._scalar = lanes
        return lanes

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, max_steps: int) -> None:
        """Advance every lane by exactly ``max_steps`` interactions.

        No stabilization detection — the lockstep analogue of
        :meth:`MultisetSimulator.run` with no predicate, used by the
        faithfulness tests to compare mid-run configurations.
        """
        if self._scalar is not None:
            for lane in self._scalar.values():
                lane.run(max_steps, stop_at_target=False)
            return
        self._budget = self._steps + max_steps
        while True:
            if not len(self._order):
                return
            if (self._budget > self._steps).any():
                try:
                    self._sweep_without_target()
                except PairTableOverflow:
                    deficits = (self._budget - self._steps).tolist()
                    order = list(self._order)
                    self._detach_all()
                    for index, deficit in zip(order, deficits):
                        if deficit > 0:
                            self._scalar[index].run(
                                int(deficit), stop_at_target=False
                            )
                    return
            else:
                return

    def _sweep_without_target(self) -> None:
        # ``_sweep`` never retires lanes itself; target checks live in
        # ``run_until_stabilized``.  This alias exists for readability.
        self._sweep()

    def run_until_stabilized(
        self,
        max_steps: int | None = None,
        on_lane_done: Callable[[LaneOutcome], None] | None = None,
    ) -> list[LaneOutcome]:
        """Run every lane to its exact stabilization step.

        Returns outcomes ordered by lane index; ``on_lane_done`` streams
        each outcome the moment its lane retires (so callers can persist
        completed trials before the slowest lane finishes).  A lane that
        exhausts ``max_steps`` (default: the solo engines'
        ``5000 * n * bit_length(n)``) raises :class:`ConvergenceError`
        naming its seed; outcomes already streamed stay valid.
        """
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        # Aggregate heartbeat over all lanes: progress is the monotone
        # committed-interaction total, the ceiling its worst case (every
        # lane running to its full per-lane budget).
        heartbeat = make_heartbeat(
            "ensemble",
            self.protocol.name,
            self.n,
            None,
            max_steps * len(self.seeds),
            enabled=self._telemetry,
        )
        outcomes: dict[int, LaneOutcome] = {}
        # (lane index, seed, steps) per budget-exhausted lane; every other
        # lane still runs to its own end before the first failure raises,
        # so an abort costs the store only the genuinely divergent lanes.
        failures: list[tuple[int, int | None, int]] = []

        def retire(index: int, steps: int, leads: int, distinct: int) -> None:
            outcome = LaneOutcome(
                index=index,
                seed=self.seeds[index],
                steps=steps,
                leader_count=leads,
                distinct_states=distinct,
            )
            outcomes[index] = outcome
            if on_lane_done is not None:
                on_lane_done(outcome)

        profile = self._profile
        tracer = make_tracer()
        if tracer is not None:
            profile.tracer = tracer
        ensemble_span = (
            nullcontext()
            if tracer is None
            else tracer.span(
                "ensemble",
                cat="trial",
                engine="ensemble",
                protocol=self.protocol.name,
                n=self.n,
                lanes=len(self.seeds),
            )
        )
        try:
            with ensemble_span:
                if self._scalar is None:
                    self._budget = self._steps + max_steps
                    # Lanes stable before any step.
                    self._retire_stabilized(retire)
                    while (
                        len(self._order) > self._detach_lanes
                        and not self._starved
                    ):
                        try:
                            with profile.stage("sweep"):
                                self._sweep()
                        except PairTableOverflow:
                            break
                        with profile.stage("retire"):
                            self._retire_stabilized(retire)
                            self._harvest_exhausted(failures)
                        if heartbeat is not None:
                            heartbeat.maybe_beat(self.committed_steps)
                    if len(self._order):
                        budgets = {
                            self._order[row]: int(
                                self._budget[row] - self._steps[row]
                            )
                            for row in range(len(self._order))
                        }
                        self._detach_all()
                        self._finish_scalar(
                            budgets, retire, failures, heartbeat
                        )
                else:
                    budgets = {
                        index: max_steps for index in self._scalar
                    }
                    self._finish_scalar(budgets, retire, failures, heartbeat)
        finally:
            profile.tracer = None
        emit_profile(
            profile,
            "ensemble",
            self.protocol.name,
            self.n,
            None,
            self.committed_steps,
        )
        if failures:
            index, seed, steps = min(failures)
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}, seed {seed}) "
                f"did not stabilize within its step budget",
                steps=steps,
            )
        return [outcomes[index] for index in sorted(outcomes)]

    def _retire_stabilized(self, retire) -> None:
        done = self._lead == self.target
        if not done.any():
            return
        for row in np.nonzero(done)[0].tolist():
            self.retired_lanes += 1
            retire(
                self._order[row],
                int(self._steps[row]),
                int(self._lead[row]),
                int(self._nloc[row]),
            )
        self._compact(~done)

    def _harvest_exhausted(self, failures: list) -> None:
        """Record budget-exhausted lanes and compact them away.

        Siblings still within budget keep running (and retiring into the
        store); the caller raises for the harvested lanes only after
        every other lane has had its chance — mirroring the scalar path,
        so both execution modes preserve the same work on abort.
        """
        exhausted = (self._steps >= self._budget) & (self._lead != self.target)
        if not exhausted.any():
            return
        for row in np.nonzero(exhausted)[0].tolist():
            index = self._order[row]
            failures.append((index, self.seeds[index], int(self._steps[row])))
        self._compact(~exhausted)

    def _finish_scalar(
        self, budgets: dict[int, int], retire, failures: list, heartbeat=None
    ) -> None:
        # Every lane gets its (budget-bounded) chance before any failure
        # propagates: a divergent lane must not cost the store the
        # outcomes of lanes that would have finished — that is what makes
        # an aborted campaign resumable.
        finished: list[int] = []
        for index in sorted(self._scalar):
            lane = self._scalar[index]
            budget = budgets[index]
            if heartbeat is None:
                self.committed_steps += lane.run(budget, stop_at_target=True)
            else:
                # Chunked so stragglers keep beating; SlotLane.run resumes
                # mid-draw-batch, so chunking never changes the chain.
                while budget > 0:
                    ran = lane.run(min(budget, 1 << 16), stop_at_target=True)
                    self.committed_steps += ran
                    budget -= ran
                    heartbeat.maybe_beat(self.committed_steps)
                    if ran == 0 or lane.lead == self.target:
                        break
            if lane.lead != self.target:
                failures.append((index, lane.seed, lane.steps))
                continue
            self.retired_lanes += 1
            retire(index, lane.steps, lane.lead, lane.distinct_states_seen())
            finished.append(index)
        for index in finished:
            del self._scalar[index]

    def telemetry_summary(self) -> dict:
        """Ensemble-wide counter summary (aggregate, not per lane).

        Per-lane trial rows never carry this — lane packing is a runtime
        choice and store rows must stay packing-independent — so these
        counters feed heartbeats, tests, and ad-hoc profiling only.
        """
        return {
            "engine": "ensemble",
            "lanes": len(self.seeds),
            "sweeps": self.sweeps,
            "committed_steps": self.committed_steps,
            "retired_lanes": self.retired_lanes,
            "detached_lanes": self.detached_lanes,
            "cache": cache_summary(self.cache.stats),
        }


class EnsembleLaneSimulator:
    """Single-trial facade with the classic simulator surface.

    Lets ``build_simulator``/``repro simulate`` treat ``ensemble`` like
    any other engine.  One lane needs no vectorization, so this runs the
    exact chain on a scalar :class:`SlotLane` directly.
    """

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        cache_entries: int = 1 << 20,
        use_kernel: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        interner = StateInterner()
        cache = make_transition_cache(
            protocol, interner, cache_entries, use_kernel=use_kernel
        )
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self.interner = interner
        self.cache = cache
        self._telemetry = telemetry
        # Stage profile (gated) and phase series (deterministic tier,
        # always on): see DESIGN.md Section 9.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        self.phase_series = make_phase_series(protocol, n)
        if hasattr(self.cache, "profile"):
            self.cache.profile = self._profile
        self._lane = SlotLane(protocol, n, seed, cache=cache)

    @property
    def steps(self) -> int:
        return self._lane.steps

    @property
    def parallel_time(self) -> float:
        return self._lane.parallel_time

    @property
    def leader_count(self) -> int:
        return self._lane.lead

    def distinct_states_seen(self) -> int:
        return self._lane.distinct_states_seen()

    def state_counts(self) -> Counter[State]:
        return self._lane.state_counts()

    def run(self, max_steps: int, until=None, check_every: int = 1) -> int:
        if until is not None:
            raise SimulationError(
                "the ensemble lane facade does not support until predicates; "
                "use the multiset engine for custom stopping"
            )
        return self._lane.run(max_steps, stop_at_target=False)

    def run_until_stabilized(
        self,
        detector=None,
        max_steps: int | None = None,
        check_every: int = 1,
    ) -> int:
        if detector is not None and getattr(detector, "target", None) is None:
            raise SimulationError(
                "the ensemble engine supports monotone-leader detection only"
            )
        if detector is not None:
            self._lane.target = detector.target
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        heartbeat = make_heartbeat(
            "ensemble",
            self.protocol.name,
            self.n,
            self.seed,
            max_steps,
            enabled=self._telemetry,
        )
        series = self.phase_series
        profile = self._profile
        tracer = make_tracer()
        if tracer is not None:
            profile.tracer = tracer
        trial_span = (
            nullcontext()
            if tracer is None
            else tracer.span(
                "trial",
                cat="trial",
                engine="ensemble",
                protocol=self.protocol.name,
                n=self.n,
                seed=self.seed,
            )
        )
        try:
            with trial_span:
                if heartbeat is None and series is None:
                    self._lane.run(max_steps, stop_at_target=True)
                else:
                    # Chunked so the lane keeps beating and the probe
                    # polls on schedule; SlotLane.run resumes
                    # mid-draw-batch, so chunking never changes the
                    # chain, and the chunk size depends only on the
                    # spec — never on the telemetry switch.
                    chunk = (
                        1 << 16
                        if series is None
                        else min(1 << 16, max(256, series.stride))
                    )
                    budget = max_steps
                    lane = self._lane
                    if series is not None:
                        series.poll(lane.steps, lane.state_counts)
                    while budget > 0 and lane.lead != lane.target:
                        budget -= lane.run(
                            min(budget, chunk), stop_at_target=True
                        )
                        if heartbeat is not None:
                            heartbeat.maybe_beat(lane.steps)
                        if series is not None:
                            series.poll(lane.steps, lane.state_counts)
                    if series is not None:
                        series.finish(lane.steps, lane.state_counts)
        finally:
            profile.tracer = None
        emit_profile(
            profile,
            "ensemble",
            self.protocol.name,
            self.n,
            self.seed,
            self.steps,
        )
        if self._lane.lead != self._lane.target:
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}) did not "
                f"stabilize within {max_steps} steps",
                steps=self._lane.steps,
            )
        return self._lane.steps

    def telemetry_summary(self) -> dict:
        """Deterministic counter summary for the trial store."""
        return {
            "engine": "ensemble",
            "path": "lane",
            "steps": self.steps,
            "distinct_states": self.distinct_states_seen(),
            "cache": cache_summary(self.cache.stats),
        }

    def phases_json(self) -> str | None:
        """Serialized phase series for the trial store, or ``None``."""
        series = self.phase_series
        return None if series is None else series.to_json()

    def describe(self) -> str:
        outputs = Counter()
        output = self.protocol.output
        for state, count in self._lane.state_counts().items():
            outputs[output(state)] += count
        return (
            f"{self.protocol.name}: n={self.n} steps={self.steps} "
            f"(parallel time {self.parallel_time:.2f}) "
            f"outputs={dict(outputs)}"
        )
