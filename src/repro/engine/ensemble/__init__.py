"""Across-trial vectorized ensemble engine.

The fourth engine: where :class:`~repro.engine.batch.BatchSimulator`
vectorizes *within* one trial (blocks of ``Theta(sqrt(n))`` interactions),
the ensemble vectorizes *across* trials — ``M`` independent same-protocol
runs advance together in ``(M, num_states)`` NumPy arrays, each lane
bit-identical to a solo :class:`~repro.engine.multiset.MultisetSimulator`
with that lane's seed.  DESIGN.md Section 4 has the representation and
the faithfulness argument.
"""

from repro.engine.ensemble.lane import SlotLane
from repro.engine.ensemble.simulator import (
    EnsembleLaneSimulator,
    EnsembleSimulator,
    LaneOutcome,
)
from repro.engine.ensemble.tables import PairTables, PairTableOverflow

__all__ = [
    "EnsembleLaneSimulator",
    "EnsembleSimulator",
    "LaneOutcome",
    "PairTables",
    "PairTableOverflow",
    "SlotLane",
]
