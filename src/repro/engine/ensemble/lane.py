"""Exact scalar continuation of one ensemble lane.

A lane is one trial of the multiset chain: the same scheduler draws, the
same count-ordered inverse-CDF mapping, the same transition memo as a
solo :class:`~repro.engine.multiset.MultisetSimulator` with that seed.
:class:`SlotLane` advances a lane one interaction at a time in plain
Python — but on the **sorted slot array** representation rather than a
Fenwick tree: ``slots`` holds every agent's (lane-local) state id in
sorted order, so the initiator lookup is ``slots[ticket]`` — O(1) where
the Fenwick inverse CDF pays O(log k) — and an applied transition moves
one agent between states by rewriting only the block-boundary slots
between them (PLL's count-up transitions move almost exclusively between
adjacent ids, so this is 1-2 writes per interaction).

The ensemble uses SlotLanes two ways:

* **straggler finishing** — once few lanes survive, per-sweep NumPy
  dispatch overhead outweighs vectorization, so remaining lanes detach
  (:meth:`EnsembleSimulator` hands each its arrays, generator, and
  unconsumed draw buffers) and run here to stabilization;
* **wide-state fallback** — when a protocol's interned state space
  overflows the quadratic pair tables, every lane runs here instead,
  memoizing transitions in per-lane dicts.

Lane-local state ids are assigned in first-appearance order — exactly the
order the solo run's interner assigns them — so the sorted-slot order,
and therefore every ticket-to-state mapping, matches the solo run
bit-for-bit.  ``tests/engine/test_ensemble.py`` pins this equivalence.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.engine.cache import TransitionCache
from repro.engine.interner import StateInterner
from repro.engine.multiset import DRAW_BATCH_SIZE
from repro.engine.protocol import LEADER, Protocol, State

__all__ = ["SlotLane"]

#: Sentinel distinguishing "pair never computed" from a memoized null.
_UNSEEN = object()

#: Stride packing (local0, local1) pairs into one int key; local ids are
#: dense first-sight indices, far below this for every protocol here.
_PAIR_STRIDE = 1 << 20


class SlotLane:
    """One exact multiset-chain trial on the sorted slot representation."""

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        *,
        cache: TransitionCache | None = None,
        target: int = 1,
    ) -> None:
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self.target = target
        if cache is None:
            from repro.engine.kernel import make_transition_cache

            interner = StateInterner()
            cache = make_transition_cache(protocol, interner)
        self.cache = cache
        self._interner = cache._interner  # shared global id space
        initial_global = self._interner.intern(protocol.initial_state())
        # local id 0 = the initial state, matching the solo interner.
        self.local_states = [initial_global]
        self._local_of_global = {initial_global: 0}
        self.slots = [0] * n
        self.prefix = [n]  # inclusive prefix counts per local id
        self.lead = n if protocol.output(protocol.initial_state()) == LEADER else 0
        self.steps = 0
        self.rng = np.random.default_rng(seed)
        self._d1: list[int] = []
        self._d2: list[int] = []
        self._cursor = 0
        # (local0, local1) -> (post_local0, post_local1, leader_delta) or
        # None for null interactions.
        # Keyed by p0 * _PAIR_STRIDE + p1: int keys hash measurably
        # faster than tuples in this loop's hottest line.
        self._pairs: dict[int, tuple[int, int, int] | None] = {}

    # -- construction from ensemble rows --------------------------------

    @classmethod
    def from_ensemble_row(
        cls,
        protocol: Protocol,
        n: int,
        seed: int | None,
        cache: TransitionCache,
        target: int,
        slots: list[int],
        prefix: list[int],
        local_globals: list[int],
        lead: int,
        steps: int,
        rng: np.random.Generator,
        d1: list[int],
        d2: list[int],
        cursor: int,
    ) -> "SlotLane":
        """Continue a lane detached mid-run from the vectorized ensemble."""
        lane = cls.__new__(cls)
        lane.protocol = protocol
        lane.n = n
        lane.seed = seed
        lane.target = target
        lane.cache = cache
        lane._interner = cache._interner
        lane.local_states = list(local_globals)
        lane._local_of_global = {
            g: i for i, g in enumerate(local_globals)
        }
        lane.slots = slots
        lane.prefix = prefix
        lane.lead = lead
        lane.steps = steps
        lane.rng = rng
        lane._d1 = d1
        lane._d2 = d2
        lane._cursor = cursor
        lane._pairs = {}
        return lane

    # -- bookkeeping -----------------------------------------------------

    def _local_id(self, global_id: int) -> int:
        """Lane-local id of a global state, interning on first sight."""
        local = self._local_of_global.get(global_id)
        if local is None:
            local = len(self.local_states)
            self._local_of_global[global_id] = local
            self.local_states.append(global_id)
            self.prefix.append(self.n)
        return local

    def _transition(self, p0: int, p1: int) -> tuple[int, int, int] | None:
        globals_ = self.local_states
        q0g, q1g = self.cache.apply(globals_[p0], globals_[p1])
        q0 = self._local_id(q0g)
        q1 = self._local_id(q1g)
        if q0 == p0 and q1 == p1:
            return None
        output = self.protocol.output
        state_of = self._interner.state_of
        delta = 0
        for q in (q0g, q1g):
            if output(state_of(q)) == LEADER:
                delta += 1
        for p in (globals_[p0], globals_[p1]):
            if output(state_of(p)) == LEADER:
                delta -= 1
        return q0, q1, delta

    def distinct_states_seen(self) -> int:
        """States this lane's trial has reached (matches the solo interner)."""
        return len(self.local_states)

    def state_counts(self) -> Counter[State]:
        """Decoded multiset of states currently present."""
        state_of = self._interner.state_of
        counts: Counter[State] = Counter()
        previous = 0
        for local, global_id in enumerate(self.local_states):
            count = self.prefix[local] - previous
            previous = self.prefix[local]
            if count:
                counts[state_of(global_id)] = count
        return counts

    @property
    def parallel_time(self) -> float:
        return self.steps / self.n

    # -- execution -------------------------------------------------------

    def run(self, max_steps: int, stop_at_target: bool = True) -> int:
        """Advance up to ``max_steps`` interactions; return how many ran.

        With ``stop_at_target`` the lane stops exactly at the first
        interaction that brings the leader count to ``target`` (the
        monotone-leader stabilization step).
        """
        if stop_at_target and self.lead == self.target:
            return 0
        n = self.n
        slots = self.slots
        prefix = self.prefix
        pairs = self._pairs
        transition = self._transition
        target = self.target if stop_at_target else None
        executed = 0
        d1, d2, cursor = self._d1, self._d2, self._cursor
        while executed < max_steps:
            if cursor >= len(d1):
                d1 = self.rng.integers(0, n, size=DRAW_BATCH_SIZE).tolist()
                d2 = self.rng.integers(0, n - 1, size=DRAW_BATCH_SIZE).tolist()
                self._d1, self._d2 = d1, d2
                cursor = 0
            t1 = d1[cursor]
            t2 = d2[cursor]
            cursor += 1
            p0 = slots[t1]
            # Responder ticket over n-1 agents: skip the initiator's slot
            # (virtually the last slot of its block).
            j2 = t2 + (t2 >= prefix[p0] - 1)
            p1 = slots[j2]
            executed += 1
            key = p0 * _PAIR_STRIDE + p1
            hit = pairs.get(key, _UNSEEN)
            if hit is _UNSEEN:
                hit = transition(p0, p1)
                pairs[key] = hit
            if hit is None:
                continue
            q0, q1, delta = hit
            for s, t in ((p0, q0), (p1, q1)):
                if t == s + 1:  # adjacent up-move: the dominant case
                    boundary = prefix[s]
                    slots[boundary - 1] = t
                    prefix[s] = boundary - 1
                elif t == s:
                    continue
                elif t > s:
                    # Ascending: when empty intermediate blocks collapse
                    # several boundary writes onto one slot, the highest
                    # state must land there (last write wins).
                    for y in range(s, t):
                        boundary = prefix[y]
                        slots[boundary - 1] = y + 1
                        prefix[y] = boundary - 1
                else:
                    # Descending for the mirror-image reason: the lowest
                    # state must survive on a collapsed boundary slot.
                    for y in range(s - 1, t - 1, -1):
                        boundary = prefix[y]
                        slots[boundary] = y
                        prefix[y] = boundary + 1
            if delta:
                self.lead += delta
                if target is not None and self.lead == target:
                    break
        self.steps += executed
        self._cursor = cursor
        return executed
