"""Compiled protocol kernels: packed states, vectorized transitions.

This package takes the Python ``delta`` call off every engine hot path
for protocols that opt in via ``Protocol.compile_kernel()``:

* :mod:`~repro.engine.kernel.spec` — the declarative contract (fields,
  struct-of-arrays ``delta``, output-feature extractors);
* :mod:`~repro.engine.kernel.compiled` — :class:`CompiledKernel`, the
  packed-code codecs and the vectorized transition (full pair table for
  compact protocols, field kernel for wide ones);
* :mod:`~repro.engine.kernel.cache` — :class:`KernelTransitionCache`,
  the :class:`~repro.engine.cache.TransitionCache` drop-in every engine
  consumes;
* :mod:`~repro.engine.kernel.multiset` — the kernel-backed scalar
  engine for ``engine="multiset"`` trials (sorted-slot configuration,
  bit-identical trajectories).

Selection is automatic and *trajectory-invisible*: engines resolve
transitions through :func:`make_transition_cache`, which returns the
kernel cache when the protocol compiles one and the plain memoized
cache otherwise.  Trial spec hashes never mention the kernel, so stored
campaigns resume unchanged.  Set ``REPRO_KERNEL=0`` to force the
interner+cache path everywhere (benchmarks do, to measure the baseline
the kernel is gated against).
"""

from __future__ import annotations

import os

from repro.engine.cache import TransitionCache
from repro.engine.interner import StateInterner
from repro.engine.kernel.cache import KERNEL_PAIR_BOUND, KernelTransitionCache
from repro.engine.kernel.compiled import TABLE_BOUND, CompiledKernel
from repro.engine.kernel.spec import Field, FieldColumns, KernelSpec
from repro.engine.protocol import Protocol

__all__ = [
    "Field",
    "FieldColumns",
    "KernelSpec",
    "CompiledKernel",
    "KernelTransitionCache",
    "KERNEL_PAIR_BOUND",
    "KERNEL_ENV",
    "TABLE_BOUND",
    "compiled_kernel_for",
    "kernels_enabled",
    "make_transition_cache",
]

#: Environment kill switch: set to ``0``/``off``/``false`` to disable
#: kernel selection process-wide (the cached-delta baseline path).
KERNEL_ENV = "REPRO_KERNEL"

_ATTR = "_compiled_kernel_cache"

#: Process-wide registry of shared compiled kernels, keyed by
#: (protocol class, spec.cache_key).  Sharing carries the memoized
#: transition tables across protocol instances — campaigns build a
#: fresh protocol per trial, and without this every trial would re-pay
#: the warm-up fills.  Bounded defensively; past the bound kernels
#: compile per instance (still correct, just unshared).
_SHARED_KERNELS: dict[tuple, "CompiledKernel"] = {}
_SHARED_KERNELS_BOUND = 64


def kernels_enabled() -> bool:
    """Whether kernel selection is on (the default)."""
    return os.environ.get(KERNEL_ENV, "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def compiled_kernel_for(protocol: Protocol) -> CompiledKernel | None:
    """The protocol's compiled kernel, or ``None`` if it does not opt in.

    Compilation runs once per protocol instance (cached on the
    instance); campaigns that build a fresh protocol per trial pay only
    the cheap spec construction again.
    """
    cached = getattr(protocol, _ATTR, False)
    if cached is not False:
        return cached
    spec = protocol.compile_kernel()
    if spec is None:
        kernel = None
    elif spec.cache_key is not None:
        registry_key = (type(protocol).__qualname__, spec.cache_key)
        kernel = _SHARED_KERNELS.get(registry_key)
        if kernel is None:
            kernel = CompiledKernel(protocol, spec)
            if len(_SHARED_KERNELS) < _SHARED_KERNELS_BOUND:
                _SHARED_KERNELS[registry_key] = kernel
    else:
        kernel = CompiledKernel(protocol, spec)
    try:
        setattr(protocol, _ATTR, kernel)
    except AttributeError:  # pragma: no cover - slotted custom protocols
        pass
    return kernel


def make_transition_cache(
    protocol: Protocol,
    interner: StateInterner,
    max_entries: int = 1 << 20,
    use_kernel: bool | None = None,
) -> TransitionCache | KernelTransitionCache:
    """Build the transition backend every engine resolves ids through.

    ``use_kernel=None`` (the default) selects automatically: the kernel
    cache when the protocol compiles one and :func:`kernels_enabled`,
    else the classic memoized :class:`TransitionCache`.  ``True`` forces
    the kernel (raising for protocols without one), ``False`` forces the
    baseline — the explicit knobs benchmarks and equivalence tests use.
    """
    if use_kernel is None:
        use_kernel = kernels_enabled() and compiled_kernel_for(protocol) is not None
    if not use_kernel:
        return TransitionCache(protocol, interner, max_entries)
    kernel = compiled_kernel_for(protocol)
    if kernel is None:
        raise ValueError(
            f"protocol {protocol.name!r} does not compile a kernel"
        )
    return KernelTransitionCache(
        protocol, interner, max_entries, kernel=kernel
    )
