"""Declarative protocol-compilation specs (struct-of-arrays lowering).

A :class:`KernelSpec` is a protocol's description of its own state as a
tuple of small integer *fields* plus a vectorized transition function
over NumPy columns of those fields.  It is the opt-in contract behind
the compiled transition kernels: a protocol that implements
``compile_kernel()`` (see :class:`repro.engine.protocol.Protocol`) hands
the engines

* a **packed integer encoding** — every state becomes one int64 code,
  fields stride-packed in declaration order, so whole configurations
  live in flat arrays instead of interned Python objects;
* a **field-wise delta** — the transition function expressed as array
  ops over decoded field columns (one NumPy array per field per agent,
  the struct-of-arrays form), so thousands of transitions resolve in
  one call with no Python ``delta`` in the loop;
* **output-feature extractors** — named vectorized maps from field
  columns to small ints (``is_leader``, phase, role ...), which the
  runtime precomputes into code-indexed tables.

The spec is purely declarative; :mod:`repro.engine.kernel.compiled`
turns it into the executable :class:`CompiledKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.engine.protocol import State
from repro.errors import ProtocolError

__all__ = ["Field", "FieldColumns", "KernelSpec"]

#: The struct-of-arrays form one agent side travels in: one int64 NumPy
#: array per declared field, keyed by field name.  Deltas receive fresh
#: column dicts and may mutate them freely (and must return them).
FieldColumns = dict[str, np.ndarray]


@dataclass(frozen=True)
class Field:
    """One packed state variable: ``size`` distinct values in ``[0, size)``.

    Optional protocol variables reserve one of the ``size`` values as the
    "undefined" sentinel; the convention (usually ``0`` = undefined, real
    values shifted by one) is the spec author's and lives entirely inside
    ``to_fields``/``from_fields``/``delta``.
    """

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ProtocolError(
                f"kernel field {self.name!r} needs a positive size, "
                f"got {self.size}"
            )


@dataclass(frozen=True)
class KernelSpec:
    """Everything needed to compile one protocol to a packed kernel.

    ``delta(a, b)`` receives the decoded field columns of the initiator
    (``a``) and responder (``b``) sides — equal-length arrays, one slot
    per transition to resolve — and returns the post columns in the same
    order.  It must be a pure vectorization of the protocol's
    ``transition``: exact agreement is pinned by the tier-1 property
    tests, not assumed.

    ``features`` maps feature names (``"leader"``, ``"epoch"``, ...) to
    vectorized extractors over field columns; the runtime materializes
    them as code-indexed tables so engines never call Python ``output``
    per interaction.

    ``sample_states`` (optional) yields well-formed states for the
    agreement tests: states satisfying the protocol's own group
    invariants (e.g. PLL's Table 3 field/group consistency), on which
    the Python transition is total.  Random trajectories are the
    fallback when it is ``None``.

    ``cache_key`` (optional) is a hashable identity of the *compiled
    artifact*: two protocol instances whose specs carry equal keys must
    lower to the same fields and the same delta (same name, same
    parameters).  When set, :func:`repro.engine.kernel.compiled_kernel_for`
    shares one :class:`CompiledKernel` — including its memoized
    transition tables — across instances, so a campaign's fresh
    protocol-per-trial discipline stops re-resolving the same pairs
    every trial.  ``None`` keeps compilation per-instance.
    """

    fields: tuple[Field, ...]
    to_fields: Callable[[State], Sequence[int]]
    from_fields: Callable[[Sequence[int]], State]
    delta: Callable[[FieldColumns, FieldColumns], tuple[FieldColumns, FieldColumns]]
    features: Mapping[str, Callable[[FieldColumns], np.ndarray]] = field(
        default_factory=dict
    )
    sample_states: Callable[[np.random.Generator, int], list[State]] | None = None
    cache_key: tuple | None = None
    #: Optional :class:`repro.telemetry.probe.PhaseProbe` carried by the
    #: spec — the kernel-level attachment point for protocols that do
    #: not override ``Protocol.phase_probe()`` (see
    #: :func:`repro.telemetry.probe.phase_probe_for`).  Excluded from
    #: compilation and from ``cache_key`` identity: probes read decoded
    #: state counts, never codes.
    phase_probe: object | None = None

    def __post_init__(self) -> None:
        if not self.fields:
            raise ProtocolError("a kernel spec needs at least one field")
        names = [spec_field.name for spec_field in self.fields]
        if len(set(names)) != len(names):
            raise ProtocolError(f"duplicate kernel field names in {names}")
