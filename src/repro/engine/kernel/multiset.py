"""Kernel-backed scalar engine for the multiset chain.

:class:`KernelMultisetSimulator` is what ``engine="multiset"`` builds
when the protocol compiles a kernel.  It runs the **exact** chain of
:class:`~repro.engine.multiset.MultisetSimulator` — same PCG64 draw
stream, same refill pattern, same count-ordered inverse-CDF ticket
mapping, same interning order, byte-identical trajectories and
stabilization step counts (pinned by ``tests/engine/test_kernel.py``) —
with the per-step Python cost stripped down:

* the configuration lives in a **sorted slot array** (every agent's
  state id in id-sorted order) plus inclusive prefix counts, so the
  initiator lookup is ``slots[ticket]`` — O(1) where the Fenwick
  inverse CDF pays O(log k) — and an applied transition rewrites only
  the block-boundary slots between the two ids (PLL's count-up moves
  are almost always between adjacent ids: 1-2 writes);
* transitions resolve through flat **list pair tables** — one index,
  no dict hashing, no tuple allocation — filled on first sight from the
  :class:`~repro.engine.kernel.cache.KernelTransitionCache` (vectorized
  kernel row fills, never a Python ``delta``);
* leader counting is a per-pair integer delta precomputed from the
  kernel's ``leader`` output-feature table, so ``output()`` is never
  called in the loop.

The sorted-slot representation is the one
:class:`~repro.engine.ensemble.lane.SlotLane` introduced (and whose
equivalence to the Fenwick chain the ensemble suite pins); this class
adds the full ``MultisetSimulator`` surface — ``step``/``run``/
``run_until_stabilized`` with predicates, ``load_counts``, count and
output accessors — so it is a drop-in engine for trials, campaigns and
experiments.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from typing import Callable

import numpy as np

from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    StabilizationDetector,
)
from repro.engine.interner import StateInterner
from repro.engine.kernel import make_transition_cache
from repro.engine.multiset import DRAW_BATCH_SIZE
from repro.engine.protocol import LEADER, Protocol, State
from repro.errors import ConvergenceError, SimulationError
from repro.telemetry.core import cache_summary, telemetry_enabled
from repro.telemetry.heartbeat import make_heartbeat
from repro.telemetry.probe import make_phase_series
from repro.telemetry.profile import StageProfile, emit_profile
from repro.telemetry.trace import make_tracer

__all__ = ["KernelMultisetSimulator"]

#: Interactions advanced per ``_advance`` call when a heartbeat is live;
#: cursor state is preserved across calls, so chunking never changes the
#: trajectory — it only bounds how stale a progress event can be.
_HEARTBEAT_CHUNK = 1 << 16

#: Sentinel distinguishing "pair never requested" from a memoized null.
_UNSEEN = object()


class KernelMultisetSimulator:
    """Execute a kernel protocol on the sorted-slot multiset chain."""

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        cache_entries: int = 1 << 20,
        batch_size: int = DRAW_BATCH_SIZE,
        telemetry: bool | None = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"population needs at least 2 agents, got n={n}")
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self._telemetry = telemetry
        #: Null interactions and first-sight pair-table fills, counted
        #: unconditionally (nulls accumulate in a loop-local int, interns
        #: happen on the cold resolve path) so the stored summary never
        #: depends on the telemetry switch.
        self.null_steps = 0
        self.pair_interns = 0
        # Stage profile (gated) and phase series (deterministic tier,
        # always on): see DESIGN.md Section 9.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        self.phase_series = make_phase_series(protocol, n)
        self.interner = StateInterner()
        self.cache = make_transition_cache(
            protocol, self.interner, cache_entries, use_kernel=True
        )
        self.cache.profile = self._profile
        self.steps = 0
        self._rng = np.random.default_rng(seed)
        self._batch_size = batch_size
        self._d1: list[int] = []
        self._d2: list[int] = []
        self._cursor = 0
        initial_id = self.interner.intern(protocol.initial_state())
        # Sorted-slot configuration: slots[i] is the state id of the
        # i-th agent in id-sorted order; prefix[s] is the inclusive
        # prefix count of ids <= s (id-indexed, appended on first sight).
        self.slots: list[int] = [initial_id] * n
        self.prefix: list[int] = [n]
        self._mark: list[int] = []
        self._sync_marks()
        self._lead = n * self._mark[initial_id]
        # Flat pair tables: _rows[p0][p1] is _UNSEEN, None (memoized
        # null) or (post0, post1, leader_delta).  Width grows with the
        # interned id count; one list index replaces dict hashing.
        self._cap = 16
        self._rows: list[list] = [[_UNSEEN] * self._cap]

    # ------------------------------------------------------------------
    # side tables
    # ------------------------------------------------------------------

    def _sync_marks(self) -> None:
        """Leader marks per id, from the kernel's feature table."""
        marks = self._mark
        known = len(self.interner)
        if len(marks) >= known:
            return
        kernel = self.cache.kernel
        if kernel.has_feature("leader"):
            codes = self.cache.id_codes()[len(marks) : known]
            marks.extend(
                int(v) for v in kernel.feature_values("leader", codes)
            )
        else:  # pragma: no cover - every LE kernel declares the feature
            output = self.protocol.output
            state_of = self.interner.state_of
            marks.extend(
                1 if output(state_of(sid)) == LEADER else 0
                for sid in range(len(marks), known)
            )

    def _grow_rows(self) -> None:
        """Widen the pair tables to cover every interned id."""
        known = len(self.interner)
        cap = self._cap
        if known > cap:
            while cap < known:
                cap *= 2
            self._rows = [
                row + [_UNSEEN] * (cap - len(row)) for row in self._rows
            ]
            self._cap = cap
        rows = self._rows
        while len(rows) < known:
            rows.append([_UNSEEN] * self._cap)
        prefix = self.prefix
        while len(prefix) < known:
            prefix.append(self.n)

    def _resolve(self, pre0: int, pre1: int):
        """First-sight pair: kernel-resolve, memoize, return the entry."""
        self.pair_interns += 1
        post0, post1 = self.cache.apply(pre0, pre1)
        self._sync_marks()
        self._grow_rows()
        if post0 == pre0 and post1 == pre1:
            entry = None
        else:
            marks = self._mark
            entry = (
                post0,
                post1,
                marks[post0] + marks[post1] - marks[pre0] - marks[pre1],
            )
        self._rows[pre0][pre1] = entry
        return entry

    # ------------------------------------------------------------------
    # configuration access (the MultisetSimulator surface)
    # ------------------------------------------------------------------

    @property
    def leader_count(self) -> int:
        """Number of agents currently outputting ``L``."""
        return self._lead

    @property
    def parallel_time(self) -> float:
        """Steps executed divided by ``n``."""
        return self.steps / self.n

    @property
    def output_counts(self) -> Counter[str]:
        """Output tally, derived on demand from the slot boundaries."""
        output = self.protocol.output
        state_of = self.interner.state_of
        tally: Counter[str] = Counter()
        for sid, count in self.state_id_counts().items():
            tally[output(state_of(sid))] += count
        return tally

    def state_id_counts(self) -> Counter[int]:
        """Multiset of interned state ids currently present (a copy)."""
        counts: Counter[int] = Counter()
        previous = 0
        for sid, boundary in enumerate(self.prefix):
            count = boundary - previous
            previous = boundary
            if count:
                counts[sid] = count
        return counts

    def state_counts(self) -> Counter[State]:
        """Multiset of decoded states currently present."""
        state_of = self.interner.state_of
        return Counter(
            {
                state_of(sid): count
                for sid, count in self.state_id_counts().items()
            }
        )

    def count_of(self, state: State) -> int:
        """Number of agents currently in ``state``."""
        sid = self.interner.id_of(state)
        if sid is None or sid >= len(self.prefix):
            # Detectors probing the shared cache can intern states the
            # configuration has never held; their count is simply 0.
            return 0
        previous = self.prefix[sid - 1] if sid else 0
        return self.prefix[sid] - previous

    def load_counts(self, counts: dict[State, int]) -> None:
        """Replace the configuration with an explicit state multiset."""
        total = sum(counts.values())
        if total != self.n:
            raise SimulationError(
                f"configuration counts sum to {total}, expected n={self.n}"
            )
        if any(count < 0 for count in counts.values()):
            raise SimulationError("configuration counts must be non-negative")
        by_id: dict[int, int] = {}
        for state, count in counts.items():
            if count == 0:
                continue
            sid = self.interner.intern(state)
            by_id[sid] = by_id.get(sid, 0) + count
        self._sync_marks()
        self._grow_rows()
        slots: list[int] = []
        prefix: list[int] = []
        running = 0
        for sid in range(len(self.interner)):
            running += by_id.get(sid, 0)
            slots.extend([sid] * by_id.get(sid, 0))
            prefix.append(running)
        self.slots = slots
        self.prefix = prefix
        marks = self._mark
        self._lead = sum(
            marks[sid] * count for sid, count in by_id.items()
        )

    def distinct_states_seen(self) -> int:
        """Number of distinct states interned so far."""
        return len(self.interner)

    def telemetry_summary(self) -> dict:
        """Deterministic counter summary for the trial store."""
        return {
            "engine": "multiset",
            "path": "kernel",
            "steps": self.steps,
            "null_steps": self.null_steps,
            "pair_interns": self.pair_interns,
            "cache": cache_summary(self.cache.stats),
        }

    def phases_json(self) -> str | None:
        """Serialized phase series for the trial store, or ``None``."""
        series = self.phase_series
        return None if series is None else series.to_json()

    def describe(self) -> str:
        """One-line human-readable summary of the simulation."""
        return (
            f"{self.protocol.name}: n={self.n} steps={self.steps} "
            f"(parallel time {self.parallel_time:.2f}) "
            f"outputs={dict(self.output_counts)}"
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _refill_draws(self) -> None:
        size = self._batch_size
        self._d1 = self._rng.integers(0, self.n, size=size).tolist()
        self._d2 = self._rng.integers(0, self.n - 1, size=size).tolist()
        self._cursor = 0

    def step(self) -> tuple[int, int, int, int]:
        """Execute one interaction; returns (pre0, pre1, post0, post1) ids."""
        executed = self._advance(1, None)
        assert executed == 1
        return self._last

    def _advance(self, max_steps: int, leader_target: int | None) -> int:
        """The hot loop: up to ``max_steps`` interactions, early exit at
        the first interaction whose leader count hits ``leader_target``."""
        n = self.n
        slots = self.slots
        prefix = self.prefix
        rows = self._rows
        lead = self._lead
        executed = 0
        nulls = 0
        d1, d2, cursor = self._d1, self._d2, self._cursor
        while executed < max_steps:
            if cursor >= len(d1):
                self._refill_draws()
                d1, d2 = self._d1, self._d2
                cursor = 0
            t1 = d1[cursor]
            t2 = d2[cursor]
            cursor += 1
            p0 = slots[t1]
            # Responder ticket over n-1 agents: skip the initiator's
            # slot (virtually the last slot of its block).
            j2 = t2 + (t2 >= prefix[p0] - 1)
            p1 = slots[j2]
            executed += 1
            hit = rows[p0][p1]
            if hit is _UNSEEN:
                hit = self._resolve(p0, p1)
                rows = self._rows  # growth may have rebuilt the tables
            if hit is None:
                nulls += 1
                self._last = (p0, p1, p0, p1)
                continue
            q0, q1, delta = hit
            self._last = (p0, p1, q0, q1)
            for s, t in ((p0, q0), (p1, q1)):
                if t == s + 1:  # adjacent up-move: the dominant case
                    boundary = prefix[s]
                    slots[boundary - 1] = t
                    prefix[s] = boundary - 1
                elif t == s:
                    continue
                elif t > s:
                    # Ascending: when empty intermediate blocks collapse
                    # several boundary writes onto one slot, the highest
                    # state must land there (last write wins).
                    for y in range(s, t):
                        boundary = prefix[y]
                        slots[boundary - 1] = y + 1
                        prefix[y] = boundary - 1
                else:
                    # Descending for the mirror-image reason: the lowest
                    # state must survive on a collapsed boundary slot.
                    for y in range(s - 1, t - 1, -1):
                        boundary = prefix[y]
                        slots[boundary] = y
                        prefix[y] = boundary + 1
            if delta:
                lead += delta
                if leader_target is not None and lead == leader_target:
                    break
        self.steps += executed
        self.null_steps += nulls
        self._cursor = cursor
        self._lead = lead
        return executed

    def run(
        self,
        max_steps: int,
        until: Callable[["KernelMultisetSimulator"], bool] | None = None,
        check_every: int = 1,
    ) -> int:
        """Run up to ``max_steps`` steps; stop early when ``until`` fires."""
        if until is None:
            return self._advance(max_steps, None)
        if until(self):
            return 0
        executed = 0
        while executed < max_steps:
            executed += self._advance(
                min(check_every, max_steps - executed), None
            )
            if until(self):
                break
        return executed

    def run_until_stabilized(
        self,
        detector: StabilizationDetector | None = None,
        max_steps: int | None = None,
        check_every: int = 1,
    ) -> int:
        """Run until stabilization; return total steps at that point."""
        if detector is None:
            detector = MonotoneLeaderStabilization()
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        if detector.check(self):
            return self.steps
        if isinstance(detector, MonotoneLeaderStabilization) and check_every == 1:
            heartbeat = make_heartbeat(
                "multiset",
                self.protocol.name,
                self.n,
                self.seed,
                max_steps,
                enabled=self._telemetry,
            )
            series = self.phase_series
            profile = self._profile
            tracer = make_tracer()
            if tracer is not None:
                profile.tracer = tracer
            trial_span = (
                nullcontext()
                if tracer is None
                else tracer.span(
                    "trial",
                    cat="trial",
                    engine="multiset",
                    protocol=self.protocol.name,
                    n=self.n,
                    seed=self.seed,
                )
            )
            try:
                with trial_span:
                    if heartbeat is None and series is None:
                        self._advance(max_steps, detector.target)
                    else:
                        # Chunked loop: chunking never changes the
                        # trajectory (cursor state persists), and the
                        # chunk size depends only on the spec — with a
                        # series present it follows the probe stride so
                        # poll sites land on schedule, never on the
                        # telemetry switch.
                        chunk = (
                            _HEARTBEAT_CHUNK
                            if series is None
                            else min(
                                _HEARTBEAT_CHUNK, max(256, series.stride)
                            )
                        )
                        target = detector.target
                        executed = 0
                        if series is not None:
                            series.poll(self.steps, self.state_counts)
                        while executed < max_steps and self._lead != target:
                            executed += self._advance(
                                min(chunk, max_steps - executed), target
                            )
                            if heartbeat is not None:
                                heartbeat.maybe_beat(self.steps)
                            if series is not None:
                                series.poll(self.steps, self.state_counts)
                        if series is not None:
                            series.finish(self.steps, self.state_counts)
            finally:
                profile.tracer = None
            emit_profile(
                profile,
                "multiset",
                self.protocol.name,
                self.n,
                self.seed,
                self.steps,
            )
        else:
            self.run(max_steps, until=detector.check, check_every=check_every)
        if not detector.check(self):
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}) did not "
                f"stabilize within {max_steps} steps",
                steps=self.steps,
            )
        return self.steps
