"""Kernel-backed transition resolution over interned state ids.

:class:`KernelTransitionCache` is the drop-in replacement for
:class:`~repro.engine.cache.TransitionCache` used when a protocol
compiles to a :class:`~repro.engine.kernel.compiled.CompiledKernel`.
Same surface (``apply``, ``apply_block``, ``stats``, the shared
interner), same observable semantics — post ids for ordered pre-id
pairs, posts of every requested pair interned in (post-initiator,
post-responder) order — but the resolution path never calls the
protocol's Python ``transition``:

* scalar lookups gather from an id-pair-indexed post table (no dict
  hashing, no tuple allocation);
* misses are served from the kernel's shared
  :class:`~repro.engine.kernel.compiled.CodeUniverse` — a pair memo in
  packed-code space filled by rectangular vectorized kernel calls (at
  most one per universe growth).  PLL's timer pairs, the cold misses
  that dominate cached-delta runs at ``n = 1024``, resolve hundreds at
  a time, and because the universe travels with the *compiled kernel*
  (shared across instances via ``KernelSpec.cache_key``), a campaign's
  later trials find every pair already resolved;
* the universe never touches the engine interner: ids are interned only
  for posts of pairs actually requested, in request order, so
  ``distinct_states_seen()`` (and therefore stored trial outcomes)
  stays byte-identical to the interner+cache path.

Beyond :data:`KERNEL_PAIR_BOUND` interned states the quadratic id
tables are dropped and resolved pairs move to a bounded dict memo —
still kernel-resolved, the paths differ only in lookup cost.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cache import CacheStats
from repro.engine.interner import StateInterner
from repro.engine.kernel.compiled import CompiledKernel
from repro.telemetry.profile import DISABLED

__all__ = ["KERNEL_PAIR_BOUND", "KernelTransitionCache"]

#: Largest interned state space for which the quadratic id-pair post
#: tables are maintained (2048^2 x 2 int32 cells = 32 MiB at the cap);
#: the paper's protocols stay far below it at every tier-1 scale.
KERNEL_PAIR_BOUND = 2048


class KernelTransitionCache:
    """Apply a compiled kernel on int ids with exact, growing memoization."""

    __slots__ = (
        "_protocol",
        "_interner",
        "kernel",
        "_universe",
        "_max_entries",
        "_pair_bound",
        "_codes",
        "_uindex",
        "_code_ids",
        "_sorted_codes",
        "_sorted_ids",
        "_post0",
        "_post1",
        "_list0",
        "_list1",
        "_cap",
        "_stored",
        "_wide",
        "stats",
        "profile",
    )

    def __init__(
        self,
        protocol,
        interner: StateInterner,
        max_entries: int = 1 << 20,
        kernel: CompiledKernel | None = None,
        pair_bound: int = KERNEL_PAIR_BOUND,
    ) -> None:
        if kernel is None:
            from repro.engine.kernel import compiled_kernel_for

            kernel = compiled_kernel_for(protocol)
            if kernel is None:
                raise ValueError(
                    f"protocol {protocol.name!r} does not compile a kernel"
                )
        self._protocol = protocol
        self._interner = interner
        self.kernel = kernel
        self._universe = kernel.universe
        self._max_entries = max_entries
        self._pair_bound = pair_bound
        self._codes = np.empty(0, dtype=np.int64)
        self._uindex = np.empty(0, dtype=np.int64)
        self._code_ids: dict[int, int] = {}
        self._sorted_codes = np.empty(0, dtype=np.int64)
        self._sorted_ids = np.empty(0, dtype=np.int64)
        # Id-level post tables (flat cap * cap, -1 = not yet requested):
        # the gather every hot-path lookup resolves from.
        self._cap = 16
        self._post0: np.ndarray | None = np.full(
            self._cap * self._cap, -1, dtype=np.int32
        )
        self._post1: np.ndarray | None = np.full(
            self._cap * self._cap, -1, dtype=np.int32
        )
        # Plain-list mirrors of the id tables for the scalar hit path:
        # one list index beats a NumPy scalar index by ~3x in the
        # per-interaction engines' hot loops.
        self._list0: list[int] | None = self._post0.tolist()
        self._list1: list[int] | None = self._post1.tolist()
        self._stored = 0
        self._wide: dict[tuple[int, int], tuple[int, int]] = {}
        self.stats = CacheStats()
        # Engines holding a StageProfile swap it in; the shared disabled
        # default keeps the fill sites below unconditional (no hasattr
        # on the miss path).
        self.profile = DISABLED
        self._sync_ids()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._stored + len(self._wide)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def dense_enabled(self) -> bool:
        """Whether the id-pair gather tables are still live."""
        return self._post0 is not None

    def _sync_ids(self) -> None:
        """Cover every interned state: codes, universe indices, reverse map."""
        known = len(self._interner)
        have = self._codes.shape[0]
        if known == have:
            return
        encode = self.kernel.encode
        state_of = self._interner.state_of
        universe = self._universe
        codes = np.empty(known, dtype=np.int64)
        codes[:have] = self._codes
        uindex = np.empty(known, dtype=np.int64)
        uindex[:have] = self._uindex
        for sid in range(have, known):
            code = encode(state_of(sid))
            codes[sid] = code
            uindex[sid] = universe.index_for(code)
            self._code_ids.setdefault(code, sid)
        self._codes = codes
        self._uindex = uindex
        # Sorted view for vectorized code -> id translation in blocks.
        order = np.argsort(codes, kind="stable")
        self._sorted_codes = codes[order]
        self._sorted_ids = order

    def id_codes(self) -> np.ndarray:
        """Packed codes of every interned state, id-indexed (a view).

        Engines use this to evaluate kernel output-feature extractors
        (leader marks, phases) over whole id ranges at once.
        """
        self._sync_ids()
        return self._codes

    def _grow_tables(self, needed: int) -> None:
        if self._post0 is None:
            return
        if needed > self._pair_bound:
            self._post0 = self._post1 = None
            self._list0 = self._list1 = None
            return
        cap = self._cap
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        old = self._cap
        new0 = np.full(cap * cap, -1, dtype=np.int32)
        new1 = np.full(cap * cap, -1, dtype=np.int32)
        new0.reshape(cap, cap)[:old, :old] = self._post0.reshape(old, old)
        new1.reshape(cap, cap)[:old, :old] = self._post1.reshape(old, old)
        self._post0, self._post1, self._cap = new0, new1, cap
        self._list0 = new0.tolist()
        self._list1 = new1.tolist()

    def _id_for_code(self, code: int) -> int:
        """Engine id of a post code, interning its state on first sight."""
        sid = self._code_ids.get(code)
        if sid is None:
            sid = self._interner.intern(self.kernel.decode(code))
            self._sync_ids()
        return sid

    def _resolve(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        """Post ids for a pair not yet in the id tables (and store them)."""
        self._sync_ids()
        with self.profile.stage("kernel_fill"):
            code0, code1 = self._universe.pair_posts(
                int(self._uindex[initiator_id]),
                int(self._uindex[responder_id]),
            )
        post0 = self._id_for_code(code0)
        post1 = self._id_for_code(code1)
        result = (post0, post1)
        self._grow_tables(len(self._interner))
        table0 = self._post0
        if table0 is not None:
            cap = self._cap
            if initiator_id < cap and responder_id < cap:
                slot = initiator_id * cap + responder_id
                table0[slot] = post0
                self._post1[slot] = post1
                self._list0[slot] = post0
                self._list1[slot] = post1
                self._stored += 1
                self.stats.misses += 1
                return result
        if len(self._wide) < self._max_entries:
            self._wide[(initiator_id, responder_id)] = result
            self.stats.misses += 1
        else:
            self.stats.bypasses += 1
        return result

    # ------------------------------------------------------------------
    # the TransitionCache surface
    # ------------------------------------------------------------------

    def apply(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        """Return post-state ids for an ordered pre-state id pair."""
        table0 = self._list0
        if table0 is not None:
            cap = self._cap
            if initiator_id < cap and responder_id < cap:
                slot = initiator_id * cap + responder_id
                post0 = table0[slot]
                if post0 >= 0:
                    self.stats.hits += 1
                    self.stats.dense_hits += 1
                    return post0, self._list1[slot]
        else:
            found = self._wide.get((initiator_id, responder_id))
            if found is not None:
                self.stats.hits += 1
                return found
        return self._resolve(initiator_id, responder_id)

    def apply_block(
        self, pre0: np.ndarray, pre1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post-state ids for slot-aligned arrays of ordered pre pairs.

        One gather when every pair is already in the id tables.  Blocks
        with missing pairs resolve through the universe in bulk: post
        codes gather from the shared memo and translate to ids in one
        vectorized pass when every post state is already interned — the
        steady state.  Only blocks that *discover* states fall back to
        the ordered per-pair path, which preserves the interner's
        request-order id assignment exactly.  Stats stay in per-slot
        units, mirroring :meth:`TransitionCache.apply_block`.
        """
        size = pre0.shape[0]
        table0 = self._post0
        if table0 is not None and size:
            cap = self._cap
            if (pre0 < cap).all() and (pre1 < cap).all():
                slots = pre0 * cap + pre1
                out0 = table0.take(slots)
                missing = out0 < 0
                count = int(np.count_nonzero(missing))
                if count == 0:
                    self.stats.hits += size
                    self.stats.dense_hits += size
                    return (
                        out0.astype(np.int64),
                        self._post1.take(slots).astype(np.int64),
                    )
                # Resolve only the missing subset through the universe
                # memo; the rest of the block stays a pure gather.
                if self._resolve_subset(pre0[missing], pre1[missing]):
                    self.stats.hits += size - count
                    self.stats.dense_hits += size - count
                    self.stats.misses += count
                    out0 = table0.take(slots)
                    return (
                        out0.astype(np.int64),
                        self._post1.take(slots).astype(np.int64),
                    )
        return self._apply_block_pairwise(pre0, pre1)

    def _resolve_subset(self, pre0: np.ndarray, pre1: np.ndarray) -> bool:
        """Bulk-resolve missing pairs into the id tables; ``False`` to
        fall back.

        Falls back when the universe memo is gone or any post state is
        not yet interned (interning order must follow pair request
        order, which only the pairwise path guarantees), and when the
        id tables themselves are out of range.
        """
        self._sync_ids()
        with self.profile.stage("kernel_fill"):
            posts = self._universe.block_posts(
                self._uindex.take(pre0), self._uindex.take(pre1)
            )
        if posts is None:
            return False
        code0, code1 = posts
        sorted_codes = self._sorted_codes
        width = sorted_codes.shape[0]
        position0 = np.minimum(np.searchsorted(sorted_codes, code0), width - 1)
        position1 = np.minimum(np.searchsorted(sorted_codes, code1), width - 1)
        if (sorted_codes[position0] != code0).any() or (
            sorted_codes[position1] != code1
        ).any():
            return False
        out0 = self._sorted_ids[position0]
        out1 = self._sorted_ids[position1]
        table0 = self._post0
        cap = self._cap
        slots = pre0 * cap + pre1
        table0[slots] = out0
        self._post1[slots] = out1
        list0, list1 = self._list0, self._list1
        for slot, value0, value1 in zip(
            slots.tolist(), out0.tolist(), out1.tolist()
        ):
            list0[slot] = value0
            list1[slot] = value1
        self._stored += int(np.unique(slots).shape[0])
        return True

    def _apply_block_pairwise(
        self, pre0: np.ndarray, pre1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Order-preserving fallback: one ``apply`` per distinct pair."""
        stride = len(self._interner)
        keys = pre0.astype(np.int64) * stride + pre1
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        out0 = np.empty(unique_keys.shape[0], dtype=np.int64)
        out1 = np.empty(unique_keys.shape[0], dtype=np.int64)
        for index, key in enumerate(unique_keys.tolist()):
            post0, post1 = self.apply(key // stride, key % stride)
            out0[index] = post0
            out1[index] = post1
        self.stats.hits += keys.shape[0] - unique_keys.shape[0]
        return out0[inverse], out1[inverse]
