"""Executable form of a protocol's kernel spec.

:class:`CompiledKernel` turns a declarative
:class:`~repro.engine.kernel.spec.KernelSpec` into the three things the
runtime consumes:

* **codecs** — ``encode``/``decode`` between rich protocol states and
  packed int64 codes (fields stride-packed in declaration order), plus
  their vectorized column forms;
* **the transition** — :meth:`apply_codes` resolves whole arrays of
  ordered (initiator, responder) code pairs in one shot.  Compact
  protocols (code space up to :data:`TABLE_BOUND` codes) are lowered all
  the way to a precomputed ``(C, C)`` pair table, so applying a block is
  a single gather; wide protocols (PLL's ``41 m``-valued timers) run the
  spec's field-wise NumPy ``delta`` over decoded columns instead — no
  Python ``delta`` call either way;
* **feature tables** — :meth:`feature_values` evaluates a spec-declared
  output-feature extractor (``leader``, phase, role ...) over arbitrary
  code arrays, which callers memoize into code- or id-indexed tables.

Compilation is cheap (strides plus, for compact protocols, one
``C x C`` kernel evaluation) and cached per protocol instance by
:func:`repro.engine.kernel.compiled_kernel_for`.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernel.spec import FieldColumns, KernelSpec
from repro.engine.protocol import Protocol, State
from repro.errors import ProtocolError

__all__ = ["TABLE_BOUND", "UNIVERSE_BOUND", "CodeUniverse", "CompiledKernel"]

#: Largest packed code space lowered to a full ``(C, C)`` pair table at
#: compile time (one gather per block thereafter).  128^2 pair slots x
#: two int64 posts = 256 KiB worst case; every constant-state protocol
#: in the registry (Angluin, the majorities) sits far below it, while
#: counter-carrying protocols fall through to the field kernel.
TABLE_BOUND = 128

#: Largest number of *registered* (reached) codes the shared pair memo
#: covers; beyond it the memo stops growing and lookups kernel-apply
#: per pair.  2048^2 int64 post codes x 2 = 64 MiB at the cap.
UNIVERSE_BOUND = 2048

#: Packed code spaces must fit comfortably in int64 arithmetic
#: (pair keys multiply two codes' strides together downstream).
_MAX_CODES = 1 << 62


class CodeUniverse:
    """Shared, growing pair memo over the codes a protocol has reached.

    Registered codes get dense *universe indices* in first-seen order
    (across every consumer — simulators sharing one compiled kernel
    share one universe).  Post codes for every ordered index pair are
    memoized in a flat ``(U, U)`` table filled in rectangular regions:
    one vectorized kernel call covers everything still missing, so
    fills happen at most once per universe growth and a campaign's
    later trials find the tables fully warm.  Universe indices are
    internal — engines keep their own interners, whose contents and
    ordering are untouched by sharing.
    """

    __slots__ = ("_kernel", "_index_of", "_codes", "_tab0", "_tab1", "_cap", "_filled")

    def __init__(self, kernel: "CompiledKernel") -> None:
        self._kernel = kernel
        self._index_of: dict[int, int] = {}
        self._codes = np.empty(16, dtype=np.int64)
        self._cap = 16
        self._tab0: np.ndarray | None = np.full(16 * 16, -1, dtype=np.int64)
        self._tab1: np.ndarray | None = np.full(16 * 16, -1, dtype=np.int64)
        self._filled = 0

    def __len__(self) -> int:
        return len(self._index_of)

    @property
    def live(self) -> bool:
        """Whether the quadratic memo is still maintained."""
        return self._tab0 is not None

    def index_for(self, code: int) -> int:
        """Dense universe index of ``code``, registering on first sight."""
        index = self._index_of.get(code)
        if index is None:
            index = len(self._index_of)
            self._index_of[code] = index
            if self._tab0 is not None and index >= self._cap:
                self._grow(index + 1)
            if index < self._codes.shape[0]:
                self._codes[index] = code
            else:
                grown = np.empty(
                    max(index + 1, 2 * self._codes.shape[0]), dtype=np.int64
                )
                grown[: self._codes.shape[0]] = self._codes
                grown[index] = code
                self._codes = grown
        return index

    def _grow(self, needed: int) -> None:
        if needed > UNIVERSE_BOUND:
            self._tab0 = self._tab1 = None
            return
        cap = self._cap
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        old = self._cap
        new0 = np.full(cap * cap, -1, dtype=np.int64)
        new1 = np.full(cap * cap, -1, dtype=np.int64)
        new0.reshape(cap, cap)[:old, :old] = self._tab0.reshape(old, old)
        new1.reshape(cap, cap)[:old, :old] = self._tab1.reshape(old, old)
        self._tab0, self._tab1, self._cap = new0, new1, cap

    def fill(self) -> None:
        """One kernel call resolving every uncovered ordered index pair.

        Extends the filled ``f x f`` square to ``known x known`` (the
        two missing rectangles); amortized over a run this is
        O(codes^2) kernel elements in O(codes) calls.
        """
        known = len(self._index_of)
        filled = self._filled
        if known <= filled or self._tab0 is None:
            return
        codes = self._codes[:known]
        fresh = codes[filled:known]
        pre0 = np.concatenate(
            [np.repeat(codes, known - filled), np.repeat(fresh, filled)]
        )
        pre1 = np.concatenate(
            [np.tile(fresh, known), np.tile(codes[:filled], known - filled)]
        )
        post0, post1 = self._kernel.apply_codes(pre0, pre1)
        cap = self._cap
        rows = np.arange(known, dtype=np.int64)
        cols = np.arange(filled, known, dtype=np.int64)
        slots = np.concatenate(
            [
                (rows[:, None] * cap + cols[None, :]).ravel(),
                (
                    cols[:, None] * cap
                    + np.arange(filled, dtype=np.int64)[None, :]
                ).ravel(),
            ]
        )
        self._tab0[slots] = post0
        self._tab1[slots] = post1
        self._filled = known

    def pair_posts(self, index0: int, index1: int) -> tuple[int, int]:
        """Memoized post codes for one ordered universe-index pair."""
        if self._tab0 is None:
            return self._kernel.apply_pair(
                int(self._codes[index0]), int(self._codes[index1])
            )
        if index0 >= self._filled or index1 >= self._filled:
            self.fill()
        slot = index0 * self._cap + index1
        return int(self._tab0[slot]), int(self._tab1[slot])

    def block_posts(
        self, index0: np.ndarray, index1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Post codes for index arrays in one gather; ``None`` if dropped."""
        if self._tab0 is None:
            return None
        if len(self._index_of) > self._filled:
            self.fill()
        slots = index0 * self._cap + index1
        return self._tab0.take(slots), self._tab1.take(slots)


class CompiledKernel:
    """Packed-code codecs plus the vectorized transition of one protocol."""

    __slots__ = (
        "protocol",
        "spec",
        "sizes",
        "strides",
        "num_codes",
        "universe",
        "_names",
        "_table",
    )

    def __init__(self, protocol: Protocol, spec: KernelSpec) -> None:
        self.protocol = protocol
        self.spec = spec
        self.universe = CodeUniverse(self)
        self._names = tuple(field.name for field in spec.fields)
        self.sizes = np.array(
            [field.size for field in spec.fields], dtype=np.int64
        )
        strides = np.ones(len(spec.fields), dtype=np.int64)
        total = 1
        for index, field in enumerate(spec.fields):
            strides[index] = total
            if total > _MAX_CODES // max(field.size, 1):
                raise ProtocolError(
                    f"kernel for {protocol.name!r} overflows the packed "
                    f"code space at field {field.name!r}"
                )
            total *= field.size
        self.strides = strides
        self.num_codes = total
        # Compact protocols are lowered to a full pair table right here:
        # one kernel evaluation over all C x C ordered pairs, then every
        # apply is a gather.
        self._table: tuple[np.ndarray, np.ndarray] | None = None
        if total <= TABLE_BOUND:
            codes = np.arange(total, dtype=np.int64)
            c0 = np.repeat(codes, total)
            c1 = np.tile(codes, total)
            post0, post1 = self._apply_fields(c0, c1)
            self._table = (post0, post1)

    # ------------------------------------------------------------------
    # codecs
    # ------------------------------------------------------------------

    def encode(self, state: State) -> int:
        """Packed int64 code of one state."""
        values = self.spec.to_fields(state)
        code = 0
        for value, stride, size in zip(
            values, self.strides.tolist(), self.sizes.tolist()
        ):
            if not 0 <= value < size:
                raise ProtocolError(
                    f"kernel for {self.protocol.name!r} packed a field "
                    f"value {value} outside [0, {size})"
                )
            code += value * stride
        return code

    def decode(self, code: int) -> State:
        """Inverse of :meth:`encode`."""
        values = [
            int((code // stride) % size)
            for stride, size in zip(
                self.strides.tolist(), self.sizes.tolist()
            )
        ]
        return self.spec.from_fields(values)

    def decode_columns(self, codes: np.ndarray) -> FieldColumns:
        """Struct-of-arrays view: one int64 column per declared field."""
        return {
            name: (codes // stride) % size
            for name, stride, size in zip(
                self._names, self.strides, self.sizes
            )
        }

    def encode_columns(self, columns: FieldColumns) -> np.ndarray:
        """Repack field columns into codes (inverse of decode_columns)."""
        code = np.zeros_like(columns[self._names[0]], dtype=np.int64)
        for name, stride in zip(self._names, self.strides):
            code += columns[name].astype(np.int64) * stride
        return code

    # ------------------------------------------------------------------
    # the transition
    # ------------------------------------------------------------------

    @property
    def table_backed(self) -> bool:
        """Whether the whole transition lives in a precomputed pair table."""
        return self._table is not None

    def _apply_fields(
        self, codes0: np.ndarray, codes1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        post0, post1 = self.spec.delta(
            self.decode_columns(codes0), self.decode_columns(codes1)
        )
        return self.encode_columns(post0), self.encode_columns(post1)

    def apply_codes(
        self, codes0: np.ndarray, codes1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post codes for slot-aligned arrays of ordered pre-code pairs."""
        table = self._table
        if table is not None:
            slots = codes0 * self.num_codes + codes1
            return table[0].take(slots), table[1].take(slots)
        return self._apply_fields(codes0, codes1)

    def apply_pair(self, code0: int, code1: int) -> tuple[int, int]:
        """Scalar convenience over :meth:`apply_codes` (tests, probes)."""
        post0, post1 = self.apply_codes(
            np.array([code0], dtype=np.int64),
            np.array([code1], dtype=np.int64),
        )
        return int(post0[0]), int(post1[0])

    # ------------------------------------------------------------------
    # output features
    # ------------------------------------------------------------------

    def has_feature(self, name: str) -> bool:
        return name in self.spec.features

    def feature_values(self, name: str, codes: np.ndarray) -> np.ndarray:
        """Evaluate one spec-declared extractor over packed codes."""
        try:
            extractor = self.spec.features[name]
        except KeyError:
            raise ProtocolError(
                f"kernel for {self.protocol.name!r} declares no feature "
                f"{name!r}"
            ) from None
        return np.asarray(
            extractor(self.decode_columns(np.asarray(codes, dtype=np.int64))),
            dtype=np.int64,
        )
