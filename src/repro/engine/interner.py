"""Dense integer interning of protocol states.

The simulation hot loop works exclusively on small integers.  The interner
assigns each distinct state a dense id (0, 1, 2, ...) on first sight and
keeps both directions of the mapping.  Because population-protocol state
spaces are small (the whole point of the paper is an ``O(log n)`` bound),
the tables stay tiny even in long runs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.engine.protocol import State

__all__ = ["StateInterner"]


class StateInterner:
    """Bidirectional mapping between hashable states and dense int ids."""

    __slots__ = ("_id_of", "_state_of")

    def __init__(self) -> None:
        self._id_of: dict[State, int] = {}
        self._state_of: list[State] = []

    def intern(self, state: State) -> int:
        """Return the id of ``state``, assigning the next free id if new."""
        sid = self._id_of.get(state)
        if sid is None:
            sid = len(self._state_of)
            self._id_of[state] = sid
            self._state_of.append(state)
        return sid

    def state_of(self, sid: int) -> State:
        """Return the state with id ``sid`` (inverse of :meth:`intern`)."""
        return self._state_of[sid]

    def id_of(self, state: State) -> int | None:
        """Return the id of ``state`` if already interned, else ``None``."""
        return self._id_of.get(state)

    def __len__(self) -> int:
        return len(self._state_of)

    def __contains__(self, state: State) -> bool:
        return state in self._id_of

    def __iter__(self) -> Iterator[State]:
        return iter(self._state_of)

    def states(self) -> list[State]:
        """All states seen so far, in id order (a copy)."""
        return list(self._state_of)

    def map_ids(self, fn: Callable[[State], object]) -> list[object]:
        """Apply ``fn`` to every interned state, returning a list by id.

        Used to build id-indexed side tables (e.g. output symbols) that the
        engines consult without re-deriving values from state objects.
        """
        return [fn(state) for state in self._state_of]
