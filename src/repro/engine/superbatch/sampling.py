"""Count-level scheduler sampling for the super-batch engine.

The batch engine (PR 2) samples the scheduler by *materializing* agent
indices: ``Theta(sqrt(n))`` picks per block, an argsort to find the
first repeated agent, a shuffle to assign sampled states to pick slots.
Every one of those arrays scales with ``sqrt(n)``, so per-interaction
cost bottoms out at a constant and the engine tops out around
``10^6``-``10^7`` agents.

This module samples the *same distributions* without the agent arrays,
following the count-level ("unordered") formulation of Berenbrink et
al., *Simulating Population Protocols in Sub-Constant Time per
Interaction*:

* :func:`sample_run_length` draws the exact length of the
  collision-free prefix — the number of interactions before the first
  repeated agent — by inverting the birthday-process survival function
  with ``lgamma`` arithmetic.  O(log n) time, no arrays at all.
* :func:`sample_run_pairs` draws the multiset of ordered (initiator,
  responder) *state pairs* realized by a collision-free run of ``L``
  interactions straight from the count vector: a chain of scalar
  hypergeometric and multivariate-hypergeometric splits keyed on the
  modal ("dominant") state, with only the rare minority-minority
  residual matched through a short materialized permutation.  The
  result is a COO triple ``(pre0, pre1, weight)`` with at most
  ``min(S^2, L)`` entries — per-run work scales with the number of
  distinct states present, not with ``n``.
* :func:`split_pair_multiset` splits a pair multiset into the multiset
  realized by a uniformly random prefix — the primitive behind the
  engine's exact in-run monotone-leader truncation.

All three are pure functions of the generator passed in, so the engine
stays deterministic per seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "GRID_WIDTH_BOUND",
    "sample_run_length",
    "sample_run_pairs",
    "split_pair_multiset",
]

#: Widest present-state support assembled through the dense pair grid
#: (zeroing a ``width^2`` int64 grid per block stays under ~1 MiB);
#: wider configurations fall back to unaggregated COO assembly.
GRID_WIDTH_BOUND = 362


def sample_run_length(
    rng: np.random.Generator, n: int, limit: int, stats=None
) -> tuple[int, bool]:
    """Length of the collision-free interaction run, capped at ``limit``.

    The uniform scheduler picks one ordered pair of distinct agents per
    interaction.  With every agent initially untouched, the probability
    that the first ``k`` interactions involve ``2k`` *distinct* agents
    is the birthday-process survival function

    ``S(k) = prod_{j<k} (n-2j)(n-2j-1) / (n(n-1))
           = [ (n)! / (n-2k)! ] / (n(n-1))^k``

    Returns ``(length, collided)`` where ``length`` is the exact number
    of leading collision-free interactions (inverse-CDF sampled via the
    ``lgamma`` form of ``S``, monotone bisection) and ``collided``
    reports whether interaction ``length + 1`` involves an
    already-touched agent (``False`` when the cap bit first: the prefix
    of a longer run is itself a collision-free run, so conditioning on
    ``length >= limit`` and keeping ``limit`` interactions is exact).

    A run longer than ``n // 2`` interactions is impossible (every agent
    is in play by then), so ``limit`` is clamped there.

    ``stats``, when given, is any object with ``bisection_calls`` and
    ``bisection_iters`` int attributes (duck-typed to avoid importing
    the engine's stats class); each survival-function evaluation counts
    as one iteration.
    """
    limit = min(limit, n // 2)
    if limit <= 0:
        return 0, False
    lgamma = math.lgamma
    log_nn = math.log(n) + math.log(n - 1)
    base = lgamma(n + 1)
    iters = 0

    def log_survival(k: int) -> float:
        nonlocal iters
        iters += 1
        return base - lgamma(n - 2 * k + 1) - k * log_nn

    try:
        ticket = rng.random()
        if ticket <= 0.0:
            return limit, False
        log_ticket = math.log(ticket)
        # S is strictly decreasing; find the largest k with S(k) > ticket.
        # Run lengths concentrate around sqrt(n), so bracket the answer by
        # doubling from 32 instead of bisecting the full (budget-sized) cap;
        # S(high // 2) > ticket always holds when the loop doubled.
        high = 32
        while high < limit and log_survival(high) > log_ticket:
            high *= 2
        if high >= limit:
            if log_survival(limit) > log_ticket:
                return limit, False
            high = limit
        low = high // 2 if high > 32 else 0
        while high - low > 1:
            mid = (low + high) // 2
            if log_survival(mid) > log_ticket:
                low = mid
            else:
                high = mid
        return low, True
    finally:
        if stats is not None:
            stats.bisection_calls += 1
            stats.bisection_iters += iters


def sample_run_pairs(
    rng: np.random.Generator,
    support: np.ndarray,
    pool: np.ndarray,
    pairs: int,
    stats=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ordered state-pair multiset of a collision-free run, from counts.

    ``support`` holds the interned ids of the states present and
    ``pool`` their counts (aligned, all positive); ``pairs`` is the run
    length ``L``.  Conditioned on the run being collision-free, its
    ``2L`` agents are a uniform without-replacement sample of the
    population assigned uniformly to pick slots, so the ordered pair
    multiset factorizes into exchangeable splits:

    1. how many sampled agents carry the modal state (one scalar
       hypergeometric over the counts), how many of those landed in
       initiator slots, and how many modal initiators drew modal
       responders (two more scalar hypergeometrics);
    2. which minority states fill the remaining sample slots, split by
       role — responders under a modal initiator, initiators over a
       modal responder, and the two sides of minority-minority pairs —
       via a chain of multivariate-hypergeometric draws over the
       minority counts;
    3. the minority-minority matching, the only part with no count-level
       factorization: both sides are materialized (``O(L * minority
       fraction^2)`` entries, zero in the concentrated configurations
       that dominate large-``n`` runs) and matched with one random
       permutation.

    Returns ``(pre0, pre1, weight)`` — COO arrays of ordered pre-state
    ids with positive multiplicities summing to ``pairs``.  Up to
    :data:`GRID_WIDTH_BOUND` present states the entries are aggregated
    per distinct pair, so every array is bounded by ``min(S^2, L)``;
    wider supports fall back to per-residual-pair entries (never bounded
    by ``n`` either way).

    ``stats``, when given, is any object with ``residual_runs`` and
    ``residual_pairs`` int attributes; runs that needed the materialized
    minority-minority matching bump both.
    """
    width = support.shape[0]
    if width == 1:
        sid = np.asarray(support[:1], dtype=np.int64)
        return sid, sid, np.array([pairs], dtype=np.int64)
    slots = 2 * pairs
    modal = int(np.argmax(pool))
    modal_id = int(support[modal])
    total = int(pool.sum())
    modal_count = int(pool[modal])
    # Modal-state block structure: three scalar hypergeometrics.
    modal_sampled = int(
        rng.hypergeometric(modal_count, total - modal_count, slots)
    )
    if modal_sampled == slots:
        sid = np.array([modal_id], dtype=np.int64)
        return sid, sid, np.array([pairs], dtype=np.int64)
    modal_initiators = (
        int(rng.hypergeometric(modal_sampled, slots - modal_sampled, pairs))
        if modal_sampled
        else 0
    )
    modal_responders = modal_sampled - modal_initiators
    modal_modal = (
        int(
            rng.hypergeometric(
                modal_responders, pairs - modal_responders, modal_initiators
            )
        )
        if modal_initiators and modal_responders
        else 0
    )
    # Role sizes for the minority sample.
    under_modal = modal_initiators - modal_modal  # minority responders
    over_modal = modal_responders - modal_modal  # minority initiators
    residual = pairs - modal_initiators - over_modal  # minority-minority
    if stats is not None and residual:
        stats.residual_runs += 1
        stats.residual_pairs += residual
    if width > GRID_WIDTH_BOUND:
        return _sample_run_pairs_wide(
            rng,
            support,
            pool,
            pairs,
            modal,
            modal_modal,
            under_modal,
            over_modal,
            residual,
        )
    keep = np.ones(width, dtype=bool)
    keep[modal] = False
    remaining = pool[keep]
    # Minority positions mapped back into support-local indices (every
    # local index at or past the modal slot shifts up by one).
    minority_local = np.arange(width - 1, dtype=np.int64)
    minority_local += minority_local >= modal
    # Accumulate the whole pair multiset in one width x width grid
    # (width is the number of *present* states, so the grid stays tiny),
    # then compress to COO with a single nonzero scan at the end.
    grid = np.zeros(width * width, dtype=np.int64)
    grid[modal * width + modal] = modal_modal
    if under_modal:
        under_types = rng.multivariate_hypergeometric(remaining, under_modal)
        remaining = remaining - under_types
        grid[modal * width + minority_local] += under_types
    if over_modal:
        over_types = rng.multivariate_hypergeometric(remaining, over_modal)
        remaining = remaining - over_types
        grid[minority_local * width + modal] += over_types
    if residual:
        left_types = rng.multivariate_hypergeometric(remaining, residual)
        remaining = remaining - left_types
        right_types = rng.multivariate_hypergeometric(remaining, residual)
        # The only non-factorizing piece: match the two minority sides
        # with one permutation over O(residual) entries.
        left = np.repeat(minority_local, left_types)
        right = np.repeat(minority_local, right_types)
        grid += np.bincount(
            left * width + rng.permuted(right), minlength=width * width
        )
    cells = np.nonzero(grid)[0]
    pre0 = support[cells // width].astype(np.int64)
    pre1 = support[cells % width].astype(np.int64)
    return pre0, pre1, grid[cells]


def _sample_run_pairs_wide(
    rng: np.random.Generator,
    support: np.ndarray,
    pool: np.ndarray,
    pairs: int,
    modal: int,
    modal_modal: int,
    under_modal: int,
    over_modal: int,
    residual: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assembly fallback for supports too wide for the dense pair grid.

    Same draws as the grid path, but the residual matching is emitted
    as unaggregated unit-weight COO entries (aggregating would need a
    ``width^2`` table or a sort).  Downstream consumers only require a
    weighted pair multiset, not distinct entries.
    """
    width = support.shape[0]
    modal_id = int(support[modal])
    keep = np.ones(width, dtype=bool)
    keep[modal] = False
    remaining = pool[keep]
    minority_ids = support[keep]
    pre0_parts = []
    pre1_parts = []
    weight_parts = []
    if modal_modal:
        sid = np.array([modal_id], dtype=np.int64)
        pre0_parts.append(sid)
        pre1_parts.append(sid)
        weight_parts.append(np.array([modal_modal], dtype=np.int64))
    if under_modal:
        under_types = rng.multivariate_hypergeometric(remaining, under_modal)
        remaining = remaining - under_types
        present = np.nonzero(under_types)[0]
        pre0_parts.append(np.full(present.shape[0], modal_id, dtype=np.int64))
        pre1_parts.append(minority_ids[present])
        weight_parts.append(under_types[present])
    if over_modal:
        over_types = rng.multivariate_hypergeometric(remaining, over_modal)
        remaining = remaining - over_types
        present = np.nonzero(over_types)[0]
        pre0_parts.append(minority_ids[present])
        pre1_parts.append(np.full(present.shape[0], modal_id, dtype=np.int64))
        weight_parts.append(over_types[present])
    if residual:
        left_types = rng.multivariate_hypergeometric(remaining, residual)
        remaining = remaining - left_types
        right_types = rng.multivariate_hypergeometric(remaining, residual)
        pre0_parts.append(np.repeat(minority_ids, left_types))
        pre1_parts.append(rng.permuted(np.repeat(minority_ids, right_types)))
        weight_parts.append(np.ones(residual, dtype=np.int64))
    return (
        np.concatenate(pre0_parts),
        np.concatenate(pre1_parts),
        np.concatenate(weight_parts),
    )


def split_pair_multiset(
    rng: np.random.Generator, weights: np.ndarray, take: int
) -> np.ndarray:
    """Pair counts realized by a uniform ``take``-interaction prefix.

    The interactions of a collision-free run occur in uniformly random
    order, so the multiset of pair types among the first ``take`` of
    them is a multivariate-hypergeometric split of the run's pair
    counts.  Exchangeability makes repeated splitting consistent, which
    is what lets the engine bisect a run to the exact interaction where
    the leader count first hits a target.
    """
    return rng.multivariate_hypergeometric(weights, take)
