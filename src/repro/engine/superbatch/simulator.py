"""Count-level super-batch simulation engine.

:class:`SuperBatchSimulator` is the fifth engine.  Like
:class:`~repro.engine.batch.BatchSimulator` it advances the chain a
block at a time and is *distribution-faithful* rather than bit-identical
to the sequential scheduler, but it crosses the batch engine's sqrt(n)
birthday barrier by never materializing the scheduler's agent picks:

1. the length of the collision-free run — the number of interactions
   before any agent repeats, the quantity the batch engine discovers by
   argsorting ``Theta(sqrt(n))`` materialized picks — is sampled
   directly from its exact birthday distribution
   (:func:`~repro.engine.superbatch.sampling.sample_run_length`);
2. the run resolves as a multiset of ordered (initiator, responder)
   *state pairs* drawn straight from the count vector via chained
   hypergeometric splits
   (:func:`~repro.engine.superbatch.sampling.sample_run_pairs`) and
   pushed through the compiled kernel's pair tables in one
   ``apply_block`` gather — per-block work scales with the number of
   distinct states present (worst case ``O(S^2)`` realized pairs), not
   with ``n``;
3. the colliding interaction is replayed individually *at the count
   level*: its touched participant's state is a weighted draw from the
   run's post-state multiset, a fresh participant's from the untouched
   remainder — no agent identities anywhere.

Exact in-block monotone-leader detection carries over to count space:
when the leader count can hit the detector's target inside a run, the
run's pair multiset is bisected with multivariate-hypergeometric prefix
splits (exchangeability makes the split exact) down to the single
interaction of first hit, so ``run_until_stabilized`` still returns the
true first-hit step.  The geometric null-run fast path is inherited
unchanged from the batch engine — it always operated on counts.

Faithfulness mirrors the batch engine's argument (DESIGN.md Section 6)
and is enforced by the same KS tests; determinism per seed holds because
every draw flows through the one generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.batch import BatchSimulator, BatchStats
from repro.engine.protocol import Protocol
from repro.engine.superbatch.sampling import (
    sample_run_length,
    sample_run_pairs,
    split_pair_multiset,
)

__all__ = ["SuperBatchSimulator", "SuperBatchStats"]


@dataclass
class SuperBatchStats(BatchStats):
    """Batch accounting plus the super-batch sampling counters.

    ``blocks`` counts sampled runs, ``block_steps`` the interactions they
    committed, ``collision_steps`` the individually replayed colliding
    interactions; the null fields are the inherited geometric fast path.
    ``truncated_runs`` counts runs cut short at an exact leader-target
    hit.  The sampling counters profile the two places a run's cost can
    hide: ``bisection_iters`` accumulates ``lgamma`` survival-function
    evaluations across the run-length inversions (``bisection_calls`` of
    them), and ``residual_pairs`` counts the minority-minority pairs that
    had to be materialized and permutation-matched (``residual_runs``
    runs needed any).
    """

    truncated_runs: int = 0
    bisection_calls: int = 0
    bisection_iters: int = 0
    residual_runs: int = 0
    residual_pairs: int = 0


class SuperBatchSimulator(BatchSimulator):
    """Execute a protocol on counts, one collision-free run per block."""

    ENGINE_NAME = "superbatch"

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        cache_entries: int = 1 << 20,
        null_scan_limit: int = 64,
        use_kernel: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        super().__init__(
            protocol,
            n,
            seed=seed,
            cache_entries=cache_entries,
            null_scan_limit=null_scan_limit,
            use_kernel=use_kernel,
            telemetry=telemetry,
        )
        self.stats = SuperBatchStats()
        #: Longest collision-free prefix with positive probability: at
        #: ``n // 2`` interactions every agent is in play.
        self._run_cap = n // 2

    # ------------------------------------------------------------------
    # block execution
    # ------------------------------------------------------------------

    def _advance_block(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool]:
        """Sample and apply one collision-free run plus its collision.

        Returns ``(applied, reached)`` exactly like the batch engine's
        block: ``reached`` means the leader count hit ``leader_target``
        at the last applied interaction, with ``self.steps`` the true
        first-hit step (runs are truncated by exchangeable prefix
        splits, see :meth:`_truncate_run`).
        """
        rng = self._rng
        limit = min(budget, self._run_cap)
        stats = self.stats
        profile = self._profile
        with profile.stage("sample"):
            length, collided = sample_run_length(
                rng, self.n, limit, stats=stats
            )
        active = 0
        applied = 0
        touched = None
        if length:
            counts = self._counts
            with profile.stage("sample"):
                support = np.nonzero(counts[: len(self.interner)])[0]
                pre0, pre1, weight = sample_run_pairs(
                    rng, support, counts[support], length, stats=stats
                )
            with profile.stage("apply"):
                post0, post1 = self.cache.apply_block(pre0, pre1)
            self._ensure_tables()
            marks = self._leader_mark
            deltas = (
                marks[post0] + marks[post1] - marks[pre0] - marks[pre1]
            )
            if leader_target is not None and deltas.any():
                with profile.stage("detect"):
                    truncated = self._truncate_run(
                        weight, deltas, self._lead, leader_target
                    )
                if truncated is not None:
                    prefix, steps = truncated
                    with profile.stage("commit"):
                        self._commit_weighted(
                            pre0, pre1, post0, post1, prefix
                        )
                    self.steps += steps
                    stats.blocks += 1
                    stats.block_steps += steps
                    stats.truncated_runs += 1
                    return steps, True
            with profile.stage("commit"):
                touched = self._commit_weighted(
                    pre0, pre1, post0, post1, weight
                )
            self.steps += length
            applied = length
            stats.blocks += 1
            stats.block_steps += length
            changed = (post0 != pre0) | (post1 != pre1)
            if changed.any():
                active = int(weight[changed].sum())
        if collided and applied < budget:
            applied += 1
            with profile.stage("commit"):
                active += self._replay_collision(2 * length, touched)
            if (
                leader_target is not None
                and self.leader_count == leader_target
            ):
                return applied, True
        if active == 0 and applied >= 16:
            self._null_mode = True
        return applied, False

    def _commit_weighted(
        self,
        pre0: np.ndarray,
        pre1: np.ndarray,
        post0: np.ndarray,
        post1: np.ndarray,
        weight: np.ndarray,
    ) -> np.ndarray:
        """Bulk-update counts and leader tally for a weighted pair multiset.

        Returns the committed post-state multiset (the block's *touched*
        agents), which the collision replay draws from.  The float64
        ``bincount`` accumulators are exact: weights and sums stay far
        inside the 2^53 integer range.
        """
        size = self._counts.shape[0]
        w = weight.astype(np.float64)
        removed = np.bincount(pre0, weights=w, minlength=size)
        removed += np.bincount(pre1, weights=w, minlength=size)
        added = np.bincount(post0, weights=w, minlength=size)
        added += np.bincount(post1, weights=w, minlength=size)
        net = (added - removed).astype(np.int64)
        changed = np.nonzero(net)[0]
        if changed.size:
            self._counts[changed] += net[changed]
            self._lead += int(
                (net[changed] * self._leader_mark[changed]).sum()
            )
        return added.astype(np.int64)

    # ------------------------------------------------------------------
    # exact in-run leader-target truncation
    # ------------------------------------------------------------------

    def _truncate_run(
        self,
        weight: np.ndarray,
        deltas: np.ndarray,
        lead: int,
        target: int,
    ) -> tuple[np.ndarray, int] | None:
        """Pair counts and length of the prefix ending at the first hit.

        The run's interactions occur in uniformly random order, so any
        prefix's pair multiset is a multivariate-hypergeometric split of
        the run's (:func:`split_pair_multiset`); bisecting with such
        splits narrows to the exact first interaction at which the
        cumulative leader count equals ``target``.  Returns ``None``
        when no prefix hits the target exactly (mirroring the batch
        engine's in-block ``cumulative == target`` scan, which also
        reports no hit when a hypothetical two-leader-loss interaction
        would jump the count past the target).
        """
        down = int((weight * np.minimum(deltas, 0)).sum())
        up = int((weight * np.maximum(deltas, 0)).sum())
        if not lead + down <= target <= lead + up:
            return None
        total = int(weight.sum())
        if total == 1:
            if lead + int((weight * deltas).sum()) == target:
                return weight, 1
            return None
        half = total // 2
        left = split_pair_multiset(self._rng, weight, half)
        found = self._truncate_run(left, deltas, lead, target)
        if found is not None:
            return found
        found = self._truncate_run(
            weight - left,
            deltas,
            lead + int((left * deltas).sum()),
            target,
        )
        if found is not None:
            prefix, steps = found
            return left + prefix, half + steps
        return None

    # ------------------------------------------------------------------
    # the colliding interaction, replayed on counts
    # ------------------------------------------------------------------

    def _replay_collision(
        self, touched_count: int, touched: np.ndarray | None
    ) -> int:
        """Apply the interaction that ended the run; returns 1 if active.

        At least one participant is *touched* — among the run's agents,
        whose states form the post multiset ``touched`` — so its state
        is a weighted draw from that multiset; a fresh participant's
        state is a weighted draw from the untouched remainder (current
        counts minus ``touched``).  Conditional on the first collision
        happening here, the (initiator, responder) touched pattern has
        weights ``t(n-t) : (n-t)t : t(t-1)`` with ``t`` the touched
        count — together the scheduler's full collision mass
        ``t(2n - t - 1)``.
        """
        rng = self._rng
        n = self.n
        t = touched_count
        cross = t * (n - t)
        ticket = int(rng.integers(0, t * (2 * n - t - 1)))
        if ticket < 2 * cross:
            # One touched participant, one fresh.
            touched_state = self._draw_one(touched)
            remainder = self._counts.copy()
            remainder[: touched.shape[0]] -= touched
            fresh_state = self._draw_one(remainder)
            if ticket < cross:
                pre_initiator, pre_responder = touched_state, fresh_state
            else:
                pre_initiator, pre_responder = fresh_state, touched_state
        else:
            pool = touched.copy()
            pre_initiator = self._draw_one(pool)
            pool[pre_initiator] -= 1
            pre_responder = self._draw_one(pool)
        return self._apply_single(pre_initiator, pre_responder)
