"""Count-level super-batch engine: past the sqrt(n) birthday barrier.

See :mod:`repro.engine.superbatch.simulator` for the engine and
:mod:`repro.engine.superbatch.sampling` for the count-level scheduler
samplers; DESIGN.md Section 6 carries the faithfulness argument.
"""

from repro.engine.superbatch.simulator import (
    SuperBatchSimulator,
    SuperBatchStats,
)

__all__ = ["SuperBatchSimulator", "SuperBatchStats"]
