"""Configuration-level utilities.

A *configuration* is a mapping from agents to states (Section 2).  This
module provides an immutable configuration value type used by tests and
invariant checkers, independent of any live simulator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.protocol import LEADER, Protocol, State

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """An immutable assignment of states to the agents ``0 .. n-1``."""

    states: tuple[State, ...]

    @classmethod
    def uniform(cls, state: State, n: int) -> "Configuration":
        """The configuration where every agent is in ``state``.

        ``Configuration.uniform(protocol.initial_state(), n)`` is the
        paper's ``C_init,P``.
        """
        return cls(states=(state,) * n)

    @classmethod
    def of(cls, states: Iterable[State]) -> "Configuration":
        return cls(states=tuple(states))

    @property
    def n(self) -> int:
        return len(self.states)

    def counts(self) -> Counter:
        """Multiset view of the configuration."""
        return Counter(self.states)

    def outputs(self, protocol: Protocol) -> Counter:
        """Tally of output symbols under ``protocol``."""
        return Counter(protocol.output(state) for state in self.states)

    def leaders(self, protocol: Protocol) -> list[int]:
        """Agent indices outputting ``L`` under ``protocol``."""
        return [
            agent
            for agent, state in enumerate(self.states)
            if protocol.output(state) == LEADER
        ]

    def replace(self, assignments: dict[int, State]) -> "Configuration":
        """A copy with the given agents' states replaced."""
        states = list(self.states)
        for agent, state in assignments.items():
            states[agent] = state
        return Configuration(states=tuple(states))

    def apply(
        self, protocol: Protocol, schedule: Sequence[tuple[int, int]]
    ) -> "Configuration":
        """Apply a deterministic schedule, returning the final configuration.

        Pure-functional counterpart of simulation: convenient for writing
        pen-and-paper unit tests against the paper's pseudocode.
        """
        states = list(self.states)
        for u, v in schedule:
            states[u], states[v] = protocol.transition(states[u], states[v])
        return Configuration(states=tuple(states))
