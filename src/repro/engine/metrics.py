"""Measurement helpers: parallel time and per-interaction instrumentation.

The paper measures stabilization time in *parallel time*: the number of
steps (interactions) divided by the population size ``n`` (Section 2).
Hooks in this module can be attached to :class:`repro.engine.simulator.
AgentSimulator` to count per-agent participations or state changes without
touching the engine's hot loop when unused.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "parallel_time",
    "InteractionCounter",
    "StateChangeCounter",
]


def parallel_time(steps: int, n: int) -> float:
    """Convert a step count to parallel time (steps / n)."""
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    return steps / n


class InteractionCounter:
    """Hook counting how many interactions each agent participates in.

    The coupon-collector argument behind the Omega(log n) lower bound
    (Table 2, [SM19]) is about the first time every agent has interacted;
    this hook lets experiment E2 measure that time directly.
    """

    def __init__(self, n: int) -> None:
        self.counts = np.zeros(n, dtype=np.int64)
        self._untouched = n

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        counts = self.counts
        if counts[u] == 0:
            self._untouched -= 1
        counts[u] += 1
        if counts[v] == 0:
            self._untouched -= 1
        counts[v] += 1

    @property
    def all_touched(self) -> bool:
        """Whether every agent has participated in at least one interaction."""
        return self._untouched == 0

    @property
    def min_count(self) -> int:
        """Fewest interactions any single agent has participated in."""
        return int(self.counts.min())


class StateChangeCounter:
    """Hook counting interactions that changed at least one agent's state.

    A long suffix with no effective transitions is a cheap signal that a
    run has gone silent — useful when debugging new protocols.
    """

    def __init__(self) -> None:
        self.effective = 0
        self.null = 0

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        if pre0 != post0 or pre1 != post1:
            self.effective += 1
        else:
            self.null += 1

    @property
    def total(self) -> int:
        return self.effective + self.null
