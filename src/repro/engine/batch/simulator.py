"""Count-vector simulation engine advancing many interactions per call.

:class:`BatchSimulator` is the third engine.  Like
:class:`~repro.engine.multiset.MultisetSimulator` it works on the
count-vector representation, but instead of sampling one interaction at a
time in Python it advances the chain a *block* at a time with vectorized
NumPy sampling:

1. draw a block of ordered (initiator, responder) agent-index pairs
   exactly as the sequential scheduler would
   (:func:`~repro.engine.batch.sampling.draw_interaction_pairs`);
2. cut the block at the first repeated agent — the birthday collision,
   expected after ``Theta(sqrt(n))`` picks — so every agent in the
   remaining prefix is distinct
   (:func:`~repro.engine.batch.sampling.first_collision`);
3. draw the prefix agents' states in one multivariate-hypergeometric shot
   over the current counts and assign them to pick slots uniformly
   (:func:`~repro.engine.batch.sampling.sample_block_states`);
4. apply transitions groupwise — one memoized
   :class:`~repro.engine.cache.TransitionCache` lookup per *distinct*
   ordered state pair in the block — and update the count vector and
   output tallies in bulk;
5. execute the colliding interaction individually: a repeated agent's
   state is its post-state from the prefix, a fresh agent's state is a
   weighted draw from the untouched remainder.

The composition is distribution-faithful to the sequential uniform
scheduler (the count process is the same Markov chain; see DESIGN.md),
which the tier-1 suite checks statistically with KS tests against the
other engines.  Near stabilization, when most pairs are no-ops, a
geometric fast path skips entire runs of null interactions: it computes
the exact probability that a scheduler pick is a null pair, advances the
step counter by a Geometric draw, and applies one weighted non-null
interaction — still exact, but O(1) blocks instead of O(1) interactions.

The engine has no per-interaction ``step()``; single-stepping is what the
other two engines are for.  Stabilization for
:class:`~repro.engine.convergence.MonotoneLeaderStabilization` is still
detected at the exact interaction: the block records per-interaction
leader-count deltas, locates the first interaction whose cumulative count
hits the target, and commits only the prefix up to it.  Generic ``until``
predicates are evaluated at block boundaries instead of every
``check_every`` steps.
"""

from __future__ import annotations

import math
from collections import Counter
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from typing import Callable

import numpy as np

from repro.engine.batch.sampling import (
    draw_interaction_pairs,
    first_collision,
    sample_block_states,
)
from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    StabilizationDetector,
)
from repro.engine.interner import StateInterner
from repro.engine.kernel import make_transition_cache
from repro.engine.protocol import LEADER, Protocol, State
from repro.errors import ConvergenceError, SimulationError
from repro.telemetry.core import cache_summary, telemetry_enabled
from repro.telemetry.heartbeat import make_heartbeat
from repro.telemetry.probe import make_phase_series
from repro.telemetry.profile import StageProfile, emit_profile
from repro.telemetry.trace import make_tracer

__all__ = ["BatchSimulator", "BatchStats"]


@dataclass
class BatchStats:
    """How the batch engine spent its interactions."""

    blocks: int = 0
    block_steps: int = 0
    collision_steps: int = 0
    null_events: int = 0
    null_skipped_steps: int = 0
    #: Blocks cut short at an exact in-block leader-target hit (the
    #: birthday-block analogue of the super-batch engine's run
    #: truncation).
    truncated_blocks: int = 0

    @property
    def total_steps(self) -> int:
        """All interactions accounted for: blocks, collisions, the null
        runs the geometric path skipped, and its non-null events."""
        return (
            self.block_steps
            + self.collision_steps
            + self.null_skipped_steps
            + self.null_events
        )

    @property
    def mean_block(self) -> float:
        """Average interactions committed per sampled block."""
        return self.block_steps / self.blocks if self.blocks else 0.0


class BatchSimulator:
    """Execute a protocol on counts, many interactions per NumPy block."""

    #: Engine name stamped into telemetry summaries and heartbeats
    #: (subclasses override).
    ENGINE_NAME = "batch"

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        cache_entries: int = 1 << 20,
        block_pairs: int | None = None,
        null_scan_limit: int = 64,
        use_kernel: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"population needs at least 2 agents, got n={n}")
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self._telemetry = telemetry
        # Stage profile (gated wall-clock tier) and phase series
        # (deterministic tier, always on): see DESIGN.md Section 9.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        self.phase_series = make_phase_series(protocol, n)
        self.interner = StateInterner()
        self.cache = make_transition_cache(
            protocol, self.interner, cache_entries, use_kernel=use_kernel
        )
        if hasattr(self.cache, "profile"):
            self.cache.profile = self._profile
        self.steps = 0
        self.stats = BatchStats()
        self._rng = np.random.default_rng(seed)
        #: Optional :class:`~repro.faults.checkpoint.TrialCheckpointer`
        #: attached by the measurement layer; polled at block
        #: boundaries.  ``None`` (the default) costs one branch per
        #: block.
        self.checkpointer = None
        if block_pairs is None:
            # The first collision lands after ~1.25 sqrt(n) picks in
            # expectation; 1.5 sqrt(n) pairs (3 sqrt(n) picks) captures
            # almost all of that mass without oversampling the tail.
            block_pairs = max(64, round(1.5 * math.sqrt(n)))
        self._block_pairs = block_pairs
        self._null_scan_limit = null_scan_limit
        self._null_mode = False
        self._counts = np.zeros(16, dtype=np.int64)
        self._output_of_id: list[str] = []
        self._leader_mark = np.zeros(16, dtype=np.int64)
        initial_id = self.interner.intern(protocol.initial_state())
        self._ensure_tables()
        self._counts[initial_id] = n
        self._lead = int(self._leader_mark[initial_id]) * n

    # ------------------------------------------------------------------
    # configuration access (same surface as MultisetSimulator)
    # ------------------------------------------------------------------

    @property
    def leader_count(self) -> int:
        """Number of agents currently outputting ``L``."""
        return self._lead

    @property
    def output_counts(self) -> Counter[str]:
        """Output tally, derived on demand from the count vector.

        Kept as a property (rather than a Counter maintained per block)
        so commits stay fully vectorized; the leader count — the one
        output engines poll every block — is tracked incrementally in
        ``leader_count`` instead.
        """
        tally: Counter[str] = Counter()
        table = self._output_of_id
        for sid in np.nonzero(self._counts)[0].tolist():
            tally[table[sid]] += int(self._counts[sid])
        return tally

    @property
    def parallel_time(self) -> float:
        """Steps executed divided by ``n``."""
        return self.steps / self.n

    def state_id_counts(self) -> Counter[int]:
        """Multiset of interned state ids currently present (a copy)."""
        present = np.nonzero(self._counts)[0]
        return Counter(
            {int(sid): int(self._counts[sid]) for sid in present}
        )

    def state_counts(self) -> Counter[State]:
        """Multiset of decoded states currently present."""
        state_of = self.interner.state_of
        return Counter(
            {state_of(sid): count for sid, count in self.state_id_counts().items()}
        )

    def count_of(self, state: State) -> int:
        """Number of agents currently in ``state``."""
        sid = self.interner.id_of(state)
        if sid is None:
            return 0
        return int(self._counts[sid])

    def load_counts(self, counts: dict[State, int]) -> None:
        """Replace the configuration with an explicit state multiset."""
        total = sum(counts.values())
        if total != self.n:
            raise SimulationError(
                f"configuration counts sum to {total}, expected n={self.n}"
            )
        if any(count < 0 for count in counts.values()):
            raise SimulationError("configuration counts must be non-negative")
        self._counts[:] = 0
        for state, count in counts.items():
            if count == 0:
                continue
            sid = self.interner.intern(state)
            self._ensure_tables()
            self._counts[sid] += count
        size = self._counts.shape[0]
        self._lead = int((self._counts * self._leader_mark[:size]).sum())
        self._null_mode = False

    def distinct_states_seen(self) -> int:
        """Number of distinct states interned so far."""
        return len(self.interner)

    def telemetry_summary(self) -> dict:
        """Deterministic counter summary for the trial store."""
        return {
            "engine": self.ENGINE_NAME,
            "steps": self.steps,
            "stats": asdict(self.stats),
            "cache": cache_summary(self.cache.stats),
        }

    def phases_json(self) -> str | None:
        """Serialized phase series for the trial store, or ``None``."""
        series = self.phase_series
        return None if series is None else series.to_json()

    def describe(self) -> str:
        """One-line human-readable summary of the simulation."""
        return (
            f"{self.protocol.name}: n={self.n} steps={self.steps} "
            f"(parallel time {self.parallel_time:.2f}) "
            f"outputs={dict(self.output_counts)}"
        )

    # ------------------------------------------------------------------
    # checkpoint round-trip (in-trial resume; see repro.faults.checkpoint)
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Everything a resumed run needs to continue *bit-identically*.

        States travel decoded, in intern order, so the restoring process
        re-interns them into the same ids (the transition cache, side
        tables and kernel mirrors rebuild lazily from there).  The RNG
        generator state is the payload's heart: restoring it makes the
        continued trajectory indistinguishable from the uninterrupted
        one.
        """
        known = len(self.interner)
        state_of = self.interner.state_of
        series = self.phase_series
        return {
            "steps": self.steps,
            "states": [state_of(sid) for sid in range(known)],
            "counts": self._counts[:known].tolist(),
            "rng": self._rng.bit_generator.state,
            "null_mode": self._null_mode,
            "stats": asdict(self.stats),
            "phases": None if series is None else series.state_dict(),
        }

    def restore_state(self, payload: dict) -> None:
        """Resume from a :meth:`checkpoint_state` snapshot."""
        for state in payload["states"]:
            self.interner.intern(state)
        self._ensure_tables()
        self._counts[:] = 0
        counts = payload["counts"]
        self._counts[: len(counts)] = counts
        size = self._counts.shape[0]
        self._lead = int((self._counts * self._leader_mark[:size]).sum())
        self.steps = int(payload["steps"])
        self._null_mode = bool(payload["null_mode"])
        self.stats = type(self.stats)(**payload["stats"])
        self._rng.bit_generator.state = payload["rng"]
        if self.phase_series is not None and payload["phases"] is not None:
            self.phase_series.load_state(payload["phases"])

    # ------------------------------------------------------------------
    # id-indexed side tables
    # ------------------------------------------------------------------

    def _ensure_tables(self) -> None:
        """Grow the id-indexed arrays to cover every interned state."""
        known = len(self.interner)
        capacity = self._counts.shape[0]
        if known > capacity:
            while capacity < known:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
            grown_marks = np.zeros(capacity, dtype=np.int64)
            grown_marks[: self._leader_mark.shape[0]] = self._leader_mark
            self._leader_mark = grown_marks
        table = self._output_of_id
        if len(table) < known:
            output = self.protocol.output
            state_of = self.interner.state_of
            for sid in range(len(table), known):
                symbol = output(state_of(sid))
                table.append(symbol)
                if symbol == LEADER:
                    self._leader_mark[sid] = 1

    # ------------------------------------------------------------------
    # block execution
    # ------------------------------------------------------------------

    def _apply_pairs(
        self, pre0: np.ndarray, pre1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post-state ids for a slot-aligned block of ordered pre pairs.

        Delegates to :meth:`TransitionCache.apply_block`: one gather from
        the dense pair table while the state space is small, one lookup
        per distinct ordered pair beyond it.
        """
        out0, out1 = self.cache.apply_block(pre0, pre1)
        self._ensure_tables()
        return out0, out1

    def _commit(
        self,
        pre0: np.ndarray,
        pre1: np.ndarray,
        post0: np.ndarray,
        post1: np.ndarray,
    ) -> None:
        """Bulk-update counts and the leader tally for applied interactions."""
        size = self._counts.shape[0]
        removed = np.bincount(pre0, minlength=size)
        removed += np.bincount(pre1, minlength=size)
        added = np.bincount(post0, minlength=size)
        added += np.bincount(post1, minlength=size)
        net = added - removed
        changed = np.nonzero(net)[0]
        if not changed.size:
            return
        self._counts[changed] += net[changed]
        self._lead += int((net[changed] * self._leader_mark[changed]).sum())

    def _draw_one(self, pool: np.ndarray) -> int:
        """One state id drawn with probability proportional to ``pool``."""
        cumulative = np.cumsum(pool)
        ticket = int(self._rng.integers(0, int(cumulative[-1])))
        return int(np.searchsorted(cumulative, ticket, side="right"))

    def _advance_block(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool]:
        """Sample and apply one block of at most ``budget`` interactions.

        Returns ``(applied, reached)`` where ``reached`` reports whether
        the leader count hit ``leader_target`` exactly at the last applied
        interaction (the block is truncated there, so ``self.steps`` is
        the true first-hit step).
        """
        pairs = min(self._block_pairs, budget)
        profile = self._profile
        with profile.stage("sample"):
            initiators, responders = draw_interaction_pairs(
                self._rng, self.n, pairs
            )
            free, collision_flat = first_collision(initiators, responders)
            use = min(free, budget)
            states = sample_block_states(
                self._rng, self._counts[: len(self.interner)], 2 * use
            )
            pre0 = states[0::2]
            pre1 = states[1::2]
        with profile.stage("apply"):
            post0, post1 = self._apply_pairs(pre0, pre1)
        reached = False
        if leader_target is not None:
            with profile.stage("detect"):
                marks = self._leader_mark
                deltas = (
                    marks[post0] + marks[post1] - marks[pre0] - marks[pre1]
                )
                if deltas.any():
                    cumulative = self.leader_count + np.cumsum(deltas)
                    hits = np.nonzero(cumulative == leader_target)[0]
                    if hits.size:
                        use = int(hits[0]) + 1
                        pre0, pre1 = pre0[:use], pre1[:use]
                        post0, post1 = post0[:use], post1[:use]
                        reached = True
                        self.stats.truncated_blocks += 1
        with profile.stage("commit"):
            self._commit(pre0, pre1, post0, post1)
        self.steps += use
        self.stats.blocks += 1
        self.stats.block_steps += use
        active = int(np.count_nonzero((post0 != pre0) | (post1 != pre1)))
        if reached:
            return use, True
        applied = use
        if collision_flat >= 0 and use == free and use < budget:
            applied += 1
            with profile.stage("commit"):
                collision_active = self._collision_step(
                    int(initiators[free]),
                    int(responders[free]),
                    initiators[:free],
                    responders[:free],
                    post0,
                    post1,
                )
            active += collision_active
            if (
                leader_target is not None
                and self.leader_count == leader_target
            ):
                return applied, True
        if active == 0 and applied >= 16:
            self._null_mode = True
        return applied, False

    def _collision_step(
        self,
        initiator_agent: int,
        responder_agent: int,
        block_initiators: np.ndarray,
        block_responders: np.ndarray,
        post0: np.ndarray,
        post1: np.ndarray,
    ) -> int:
        """Apply the interaction that ended the block; returns 1 if active.

        At least one of its two agents already interacted in the block, so
        its state is the post-state it was left in; a fresh agent's state
        is a weighted draw from the untouched remainder of the population
        (current counts minus the block's post-states).
        """

        def touched_state(agent: int) -> int | None:
            hits = np.nonzero(block_initiators == agent)[0]
            if hits.size:
                return int(post0[hits[0]])
            hits = np.nonzero(block_responders == agent)[0]
            if hits.size:
                return int(post1[hits[0]])
            return None

        pre_initiator = touched_state(initiator_agent)
        pre_responder = touched_state(responder_agent)
        if pre_initiator is None or pre_responder is None:
            pool = self._counts.copy()
            size = pool.shape[0]
            pool -= np.bincount(post0, minlength=size)
            pool -= np.bincount(post1, minlength=size)
            if pre_initiator is None:
                pre_initiator = self._draw_one(pool)
                pool[pre_initiator] -= 1
            if pre_responder is None:
                pre_responder = self._draw_one(pool)
        return self._apply_single(pre_initiator, pre_responder)

    def _apply_single(self, pre_initiator: int, pre_responder: int) -> int:
        """Resolve and commit one individually executed interaction.

        The shared tail of both block engines' collision steps: one
        cache lookup, step/collision accounting, and the count +
        leader-tally update.  Returns 1 when a state changed, 0 for a
        no-op.
        """
        post_initiator, post_responder = self.cache.apply(
            pre_initiator, pre_responder
        )
        self._ensure_tables()
        self.steps += 1
        self.stats.collision_steps += 1
        if (post_initiator, post_responder) == (pre_initiator, pre_responder):
            return 0
        counts = self._counts
        counts[pre_initiator] -= 1
        counts[pre_responder] -= 1
        counts[post_initiator] += 1
        counts[post_responder] += 1
        marks = self._leader_mark
        self._lead += int(
            marks[post_initiator]
            + marks[post_responder]
            - marks[pre_initiator]
            - marks[pre_responder]
        )
        return 1

    # ------------------------------------------------------------------
    # geometric null fast path
    # ------------------------------------------------------------------

    #: Leave the geometric path when non-null pairs carry more than this
    #: fraction of scheduler probability; block sampling is cheaper then.
    _NULL_EXIT = 1.0 / 64.0

    def _null_skip(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool] | None:
        """Skip a Geometric run of null interactions, apply one non-null.

        Exact: with ``p`` the probability that a scheduler pick is a
        non-null ordered state pair (computed from current counts), the
        number of steps up to and including the next non-null interaction
        is Geometric(``p``), and the non-null pair itself is drawn with
        probability proportional to its pair weight.  Returns ``None``
        when the configuration is too active (or too wide) for the scan
        to pay off — the caller falls back to block sampling.
        """
        known = len(self.interner)
        counts = self._counts[:known]
        present = np.nonzero(counts)[0]
        if present.shape[0] > self._null_scan_limit:
            return None
        # The whole present x present scan goes through the cache's
        # block interface in one shot — a single gather on the kernel
        # path (or the dense mirror), instead of one Python lookup per
        # ordered pair.  Pair order matches the historical nested loop
        # (row-major over ascending present ids), so the weighted ticket
        # below lands on the same pair.
        pairs0 = np.repeat(present, present.shape[0])
        pairs1 = np.tile(present, present.shape[0])
        eligible = (pairs0 != pairs1) | (counts[pairs0] >= 2)
        pairs0, pairs1 = pairs0[eligible], pairs1[eligible]
        post0s, post1s = self.cache.apply_block(pairs0, pairs1)
        self._ensure_tables()
        active = (post0s != pairs0) | (post1s != pairs1)
        if not active.any():
            # Silent configuration: every remaining interaction is a no-op.
            self.steps += budget
            self.stats.null_skipped_steps += budget
            return budget, False
        active0 = pairs0[active]
        active1 = pairs1[active]
        weights = counts[active0] * counts[active1]
        same = active0 == active1
        weights[same] = counts[active0[same]] * (counts[active0[same]] - 1)
        active_weight = int(weights.sum())
        probability = active_weight / (self.n * (self.n - 1))
        if probability > self._NULL_EXIT:
            return None
        skip = int(self._rng.geometric(probability))
        if skip > budget:
            self.steps += budget
            self.stats.null_skipped_steps += budget
            return budget, False
        cumulative = np.cumsum(weights)
        ticket = int(self._rng.integers(0, active_weight))
        chosen = int(np.searchsorted(cumulative, ticket, side="right"))
        pre0 = int(active0[chosen])
        pre1 = int(active1[chosen])
        post0 = int(post0s[active][chosen])
        post1 = int(post1s[active][chosen])
        self.steps += skip
        self.stats.null_skipped_steps += skip - 1
        self.stats.null_events += 1
        self._commit(
            np.array([pre0]),
            np.array([pre1]),
            np.array([post0]),
            np.array([post1]),
        )
        reached = (
            leader_target is not None and self.leader_count == leader_target
        )
        return skip, reached

    def _advance(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool]:
        """One scheduling decision: geometric fast path or sampled block."""
        if self._null_mode:
            with self._profile.stage("null"):
                skipped = self._null_skip(budget, leader_target)
            if skipped is not None:
                return skipped
            self._null_mode = False
        return self._advance_block(budget, leader_target)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        max_steps: int,
        until: Callable[["BatchSimulator"], bool] | None = None,
        check_every: int = 1,
    ) -> int:
        """Run up to ``max_steps`` steps; stop early when ``until`` fires.

        ``until`` is evaluated between blocks rather than every
        ``check_every`` interactions (the parameter is accepted for
        interface parity); the step count never exceeds ``max_steps``.
        """
        executed = 0
        if until is not None and until(self):
            return 0
        while executed < max_steps:
            executed += self._advance(max_steps - executed, None)[0]
            if self.checkpointer is not None:
                self.checkpointer.maybe_save(self)
            if until is not None and until(self):
                break
        return executed

    def run_until_stabilized(
        self,
        detector: StabilizationDetector | None = None,
        max_steps: int | None = None,
        check_every: int = 1,
    ) -> int:
        """Run until stabilization; return total steps at that point.

        With the default :class:`MonotoneLeaderStabilization` detector the
        returned step count is exact — blocks are truncated at the first
        interaction whose leader count hits the target.  Other detectors
        are polled at block boundaries.
        """
        if detector is None:
            detector = MonotoneLeaderStabilization()
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        if detector.check(self):
            return self.steps
        if isinstance(detector, MonotoneLeaderStabilization):
            target = detector.target
            executed = 0
            heartbeat = make_heartbeat(
                self.ENGINE_NAME,
                self.protocol.name,
                self.n,
                self.seed,
                max_steps,
                enabled=self._telemetry,
            )
            series = self.phase_series
            profile = self._profile
            tracer = make_tracer()
            if tracer is not None:
                profile.tracer = tracer
            trial_span = (
                nullcontext()
                if tracer is None
                else tracer.span(
                    "trial",
                    cat="trial",
                    engine=self.ENGINE_NAME,
                    protocol=self.protocol.name,
                    n=self.n,
                    seed=self.seed,
                )
            )
            try:
                with trial_span:
                    if series is not None:
                        series.poll(self.steps, self.state_counts)
                    while executed < max_steps:
                        applied, reached = self._advance(
                            max_steps - executed, target
                        )
                        executed += applied
                        # Probe polls are chain-determined (block
                        # boundaries; the schedule reads only steps), so
                        # the series never depends on the telemetry
                        # switch — the Section 9 neutrality contract.
                        if series is not None:
                            series.poll(self.steps, self.state_counts)
                        if reached:
                            break
                        # One branch per block when telemetry is off;
                        # blocks span Theta(sqrt(n)) interactions (whole
                        # runs on the super-batch subclass), so the poll
                        # never sits on a per-interaction path.
                        if heartbeat is not None:
                            heartbeat.maybe_beat(self.steps)
                        if self.checkpointer is not None:
                            self.checkpointer.maybe_save(self)
                    if series is not None:
                        series.finish(self.steps, self.state_counts)
            finally:
                profile.tracer = None
            emit_profile(
                profile,
                self.ENGINE_NAME,
                self.protocol.name,
                self.n,
                self.seed,
                self.steps,
            )
        else:
            self.run(max_steps, until=detector.check, check_every=check_every)
        if not detector.check(self):
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}) did not "
                f"stabilize within {max_steps} steps",
                steps=self.steps,
            )
        return self.steps
