"""Vectorized scheduler sampling for the batch engine.

The uniformly random scheduler picks one ordered pair of distinct agents
per interaction.  The batch engine exploits a classical observation (the
block-processing idea of Berenbrink et al., *Simulating Population
Protocols in Sub-Constant Time per Interaction*): as long as no agent
appears twice within a run of interactions, the agents involved are a
uniform without-replacement sample of the population, so their *states*
can be drawn in one multivariate-hypergeometric shot from the current
count vector and the interactions applied in bulk.  The first repeated
agent — the "birthday collision", expected after ``Theta(sqrt(n))``
picks — ends the block; the colliding interaction needs the post-states
of the block and is handled individually by the simulator.

Three helpers cover the scheduler-side sampling; all are pure functions
of the generator passed in, so the engine stays deterministic per seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "draw_interaction_pairs",
    "first_collision",
    "sample_block_states",
]


def draw_interaction_pairs(
    rng: np.random.Generator, n: int, pairs: int
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``pairs`` ordered (initiator, responder) agent-index pairs.

    Matches the sequential scheduler exactly: the initiator is uniform over
    all ``n`` agents and the responder uniform over the other ``n - 1``
    (drawn in ``[0, n-1)`` and shifted past the initiator's index).
    """
    initiators = rng.integers(0, n, size=pairs)
    responders = rng.integers(0, n - 1, size=pairs)
    responders += responders >= initiators
    return initiators, responders


def first_collision(
    initiators: np.ndarray, responders: np.ndarray
) -> tuple[int, int]:
    """Locate the first repeated agent in a block of interaction pairs.

    Returns ``(free, flat_index)`` where ``free`` is the number of leading
    interactions in which every agent index is distinct and ``flat_index``
    is the position of the first repeat in the interleaved pick sequence
    ``(i0, r0, i1, r1, ...)`` — or ``(pairs, -1)`` when the whole block is
    collision-free.  ``free >= 1`` always: the two picks of one interaction
    are distinct by construction, so the earliest possible collision is the
    initiator of the second interaction (flat index 2).
    """
    flat = np.empty(2 * initiators.shape[0], dtype=np.int64)
    flat[0::2] = initiators
    flat[1::2] = responders
    # Stable argsort keeps equal agent indices in pick order, so marking
    # every sorted element equal to its predecessor flags exactly the
    # second-and-later occurrences; the earliest such pick ends the block.
    order = np.argsort(flat, kind="stable")
    ordered = flat[order]
    repeats = ordered[1:] == ordered[:-1]
    if not repeats.any():
        return initiators.shape[0], -1
    flat_index = int(order[1:][repeats].min())
    return flat_index // 2, flat_index


def sample_block_states(
    rng: np.random.Generator, counts: np.ndarray, slots: int
) -> np.ndarray:
    """States of ``slots`` distinct agents, one per scheduler pick slot.

    Conditioned on the picks being distinct agents, their states are a
    uniform without-replacement sample from the configuration — a
    multivariate hypergeometric draw over the count vector — and every
    assignment of sampled states to pick slots is equally likely, hence
    the shuffle.  Returns an int64 array of ``slots`` state ids.
    """
    sample = rng.multivariate_hypergeometric(counts, slots)
    states = np.repeat(np.arange(counts.shape[0], dtype=np.int64), sample)
    rng.shuffle(states)
    return states
