"""Vectorized batch-interaction engine.

The subsystem splits into two layers:

* :mod:`~repro.engine.batch.sampling` — scheduler-side vectorized
  sampling: ordered agent-pair draws, birthday-collision detection, and
  multivariate-hypergeometric block-state assignment;
* :mod:`~repro.engine.batch.simulator` — :class:`BatchSimulator`, which
  turns collision-free blocks into bulk count updates (one memoized
  transition lookup per distinct state pair) and fast-forwards
  null-dominated phases geometrically.

See DESIGN.md for when to prefer this engine over ``agent``/``multiset``.
"""

from repro.engine.batch.sampling import (
    draw_interaction_pairs,
    first_collision,
    sample_block_states,
)
from repro.engine.batch.simulator import BatchSimulator, BatchStats

__all__ = [
    "BatchSimulator",
    "BatchStats",
    "draw_interaction_pairs",
    "first_collision",
    "sample_block_states",
]
