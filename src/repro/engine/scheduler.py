"""Interaction schedulers.

The paper's model draws, at every step, an ordered pair of distinct agents
``(u, v)`` uniformly at random — ``u`` is the initiator, ``v`` the
responder (Section 2, the uniformly random scheduler ``Gamma``).  This
module provides that scheduler (batched through numpy for throughput) and a
deterministic replay scheduler used by traces and unit tests.
"""

from __future__ import annotations

from typing import Iterator, Protocol as TypingProtocol, Sequence

import numpy as np

from repro.errors import ScheduleError

__all__ = [
    "PairScheduler",
    "RandomScheduler",
    "DeterministicSchedule",
    "RestrictedScheduler",
]


class PairScheduler(TypingProtocol):
    """Structural interface: anything with ``next_pair() -> (u, v)``."""

    def next_pair(self) -> tuple[int, int]:  # pragma: no cover - protocol
        ...


class RandomScheduler:
    """The uniformly random scheduler ``Gamma``.

    Each call to :meth:`next_pair` returns an ordered pair of distinct agent
    indices, each of the ``n * (n - 1)`` pairs with equal probability.
    Pairs are generated in numpy batches; the per-call cost is a couple of
    list indexing operations.
    """

    __slots__ = ("n", "_rng", "_batch_size", "_initiators", "_responders", "_cursor")

    def __init__(
        self,
        n: int,
        seed: int | np.random.Generator | None = None,
        batch_size: int = 16384,
    ) -> None:
        if n < 2:
            raise ScheduleError(f"a population needs at least 2 agents, got n={n}")
        if batch_size < 1:
            raise ScheduleError(f"batch_size must be positive, got {batch_size}")
        self.n = n
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self._batch_size = batch_size
        self._initiators: list[int] = []
        self._responders: list[int] = []
        self._cursor = 0
        self._refill()

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator (shared, stateful)."""
        return self._rng

    def _refill(self) -> None:
        # Sample initiator u uniformly from [0, n) and responder v uniformly
        # from the remaining n-1 agents by drawing from [0, n-1) and shifting
        # values >= u up by one.  This is exactly uniform over ordered pairs
        # of distinct agents.
        n = self.n
        size = self._batch_size
        initiators = self._rng.integers(0, n, size=size)
        responders = self._rng.integers(0, n - 1, size=size)
        responders = responders + (responders >= initiators)
        self._initiators = initiators.tolist()
        self._responders = responders.tolist()
        self._cursor = 0

    def next_pair(self) -> tuple[int, int]:
        """Return the next ordered (initiator, responder) pair."""
        cursor = self._cursor
        if cursor >= len(self._initiators):
            self._refill()
            cursor = 0
        self._cursor = cursor + 1
        return self._initiators[cursor], self._responders[cursor]

    def pairs(self, count: int) -> Iterator[tuple[int, int]]:
        """Yield ``count`` pairs."""
        for _ in range(count):
            yield self.next_pair()


class RestrictedScheduler:
    """Uniformly random interactions *within a subset* of the agents.

    Models a temporary network partition: while active, only members of
    ``allowed`` meet (uniformly over their ordered pairs); everyone else is
    isolated.  Used by the robustness experiment (E13) to reach adversarial
    -but-reachable configurations before handing the run back to the
    uniformly random scheduler — the paper's Lemmas 9/10 promise recovery
    from *any* reachable configuration.

    Induced distribution: with ``m = len(allowed)`` members, every one of
    the ``m * (m - 1)`` ordered pairs of *distinct* members is equally
    likely at every step — the member list is sorted and index-remapped
    onto an inner :class:`RandomScheduler` over ``m`` virtual agents, so
    ``allowed = range(n)`` reproduces the uniform scheduler's stream
    exactly (same seed, same pairs).  A member listed twice would have
    silently collapsed to one membership (not a doubled interaction
    rate), so duplicates are rejected rather than deduplicated.
    """

    __slots__ = ("n", "_members", "_inner")

    def __init__(
        self,
        n: int,
        allowed: Sequence[int],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        members = sorted(allowed)
        if len(members) != len(set(members)):
            duplicates = sorted(
                {m for m in members if members.count(m) > 1}
            )
            raise ScheduleError(
                f"duplicate partition members {duplicates}: membership is "
                f"a set; weight agents via a weighted schedule instead"
            )
        if len(members) < 2:
            raise ScheduleError("a partition needs at least 2 members")
        if members[0] < 0 or members[-1] >= n:
            raise ScheduleError("partition members outside 0..n-1")
        self.n = n
        self._members = members
        self._inner = RandomScheduler(len(members), seed)

    def next_pair(self) -> tuple[int, int]:
        u, v = self._inner.next_pair()
        return self._members[u], self._members[v]

    def pairs(self, count: int) -> Iterator[tuple[int, int]]:
        for _ in range(count):
            yield self.next_pair()


class DeterministicSchedule:
    """Replay a fixed finite sequence of interactions.

    Used to express the paper's deterministic schedules ``gamma`` (e.g. in
    epidemic unit tests) and to replay recorded traces.  Raises
    :class:`~repro.errors.ScheduleError` when exhausted or when a pair is
    malformed for the population size it is validated against.
    """

    __slots__ = ("_pairs", "_cursor")

    def __init__(self, pairs: Sequence[tuple[int, int]]) -> None:
        self._pairs = list(pairs)
        self._cursor = 0

    @classmethod
    def validated(
        cls, pairs: Sequence[tuple[int, int]], n: int
    ) -> "DeterministicSchedule":
        """Build a schedule, checking every pair against population size ``n``."""
        for index, (u, v) in enumerate(pairs):
            if u == v:
                raise ScheduleError(f"pair #{index} has identical agents: ({u}, {v})")
            if not (0 <= u < n and 0 <= v < n):
                raise ScheduleError(
                    f"pair #{index} = ({u}, {v}) out of range for n={n}"
                )
        return cls(pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    @property
    def remaining(self) -> int:
        """Number of pairs not yet consumed."""
        return len(self._pairs) - self._cursor

    def next_pair(self) -> tuple[int, int]:
        if self._cursor >= len(self._pairs):
            raise ScheduleError("deterministic schedule exhausted")
        pair = self._pairs[self._cursor]
        self._cursor += 1
        return pair

    def reset(self) -> None:
        """Rewind to the beginning of the schedule."""
        self._cursor = 0
