"""Memoized transition application over interned state ids.

Population protocol transitions are deterministic functions of the ordered
(initiator, responder) state pair, so ``T`` can be memoized exactly.  The
cache is bounded: once ``max_entries`` distinct pairs have been stored,
further misses are computed directly without insertion, so memory stays
bounded even for protocols with high-entropy components (e.g. the ``V_B``
count-up timers of PLL, whose ``count`` variable cycles through ``41 m``
values and makes most timer/timer pairs cold).

Two lookup structures back the memo:

* a dict keyed by the ordered id pair — always present, unbounded state
  space, the ``max_entries`` insertion bound applies here;
* a **dense fast path**: while the interned state space stays small
  (``<= DENSE_STATE_BOUND`` states by default; configurable per cache
  or via ``REPRO_DENSE_STATE_BOUND``), stored pairs are mirrored into a
  ``(S, S)`` pair-indexed NumPy table.  Scalar lookups then skip dict
  hashing, and :meth:`TransitionCache.apply_block` resolves whole arrays
  of pre-state pairs with one gather — the form the vectorized engines
  (batch blocks, ensemble lanes) consume.  The moment the interner grows
  past the bound the dense mirror is dropped and everything falls back to
  the dict, so wide-state protocols pay nothing but the bound check.

A pair is mirrored into the dense table only when it is also stored in
the dict: the ``max_entries`` eviction discipline (insert-until-full,
then compute-without-storing) is observable through ``stats`` and must
not change underneath callers that tuned it.

Since the dense fast path landed, block lookups account stats **per
slot** on every path (PR 2's block path counted per *distinct* pair),
so ``hit_rate`` is comparable across paths; batch-engine cache rows in
BENCH_engine.json shifted accordingly at the same code generation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.engine.interner import StateInterner
from repro.engine.protocol import Protocol

__all__ = [
    "CacheStats",
    "DENSE_STATE_BOUND",
    "DENSE_STATE_BOUND_ENV",
    "TransitionCache",
]

#: Default bound on the interned state space for which the dense
#: ``(S, S)`` mirror is maintained; beyond it lookups use only the dict.
#: 512 states cover all of the paper's protocols at tier-1 scale —
#: including PLL at ``n = 1024``, whose ``41 m`` count-up timers reach
#: ~275 states and used to silently drop the mirror at the old bound of
#: 256 — while capping the mirror at 512 x 512 x 2 int32 cells = 2 MiB.
#: Override per cache via the ``dense_bound`` constructor argument or
#: process-wide via :data:`DENSE_STATE_BOUND_ENV`.
DENSE_STATE_BOUND = 512

#: Environment override for the default dense-mirror bound (an integer;
#: 0 disables the mirror entirely).
DENSE_STATE_BOUND_ENV = "REPRO_DENSE_STATE_BOUND"


def _default_dense_bound() -> int:
    raw = os.environ.get(DENSE_STATE_BOUND_ENV)
    if raw is None:
        return DENSE_STATE_BOUND
    try:
        return max(0, int(raw))
    except ValueError:
        return DENSE_STATE_BOUND


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    #: Subset of ``hits`` answered by the dense pair table (scalar path)
    #: or resolved per-slot by :meth:`TransitionCache.apply_block`.
    dense_hits: int = 0

    @property
    def lookups(self) -> int:
        """Total number of transitions requested through the cache."""
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class TransitionCache:
    """Apply a protocol's transition on int ids with exact memoization."""

    __slots__ = (
        "_protocol",
        "_interner",
        "_table",
        "_max_entries",
        "_dense",
        "_dense_cap",
        "_dense_bound",
        "stats",
    )

    def __init__(
        self,
        protocol: Protocol,
        interner: StateInterner,
        max_entries: int = 1 << 20,
        dense_bound: int | None = None,
    ) -> None:
        self._protocol = protocol
        self._interner = interner
        self._table: dict[tuple[int, int], tuple[int, int]] = {}
        self._max_entries = max_entries
        # Dense mirror: _dense[0] holds post-initiator ids, _dense[1]
        # post-responder ids, both flat (cap * cap) with -1 = not stored.
        # None once the interner outgrows the dense bound (ctor arg,
        # REPRO_DENSE_STATE_BOUND, or the module default, in that order).
        self._dense_bound = (
            _default_dense_bound() if dense_bound is None else dense_bound
        )
        self._dense_cap = 16
        self._dense: tuple[np.ndarray, np.ndarray] | None = (
            (
                np.full(self._dense_cap * self._dense_cap, -1, dtype=np.int32),
                np.full(self._dense_cap * self._dense_cap, -1, dtype=np.int32),
            )
            if self._dense_bound > 0
            else None
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._table)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def dense_enabled(self) -> bool:
        """Whether the dense pair table is still live."""
        return self._dense is not None

    def _grow_dense(self, needed: int) -> None:
        """Grow (or drop) the dense mirror to cover ``needed`` state ids."""
        if self._dense is None:
            return
        if needed > self._dense_bound:
            self._dense = None
            return
        cap = self._dense_cap
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        old0, old1 = self._dense
        new0 = np.full(cap * cap, -1, dtype=np.int32)
        new1 = np.full(cap * cap, -1, dtype=np.int32)
        old_cap = self._dense_cap
        new0.reshape(cap, cap)[:old_cap, :old_cap] = old0.reshape(
            old_cap, old_cap
        )
        new1.reshape(cap, cap)[:old_cap, :old_cap] = old1.reshape(
            old_cap, old_cap
        )
        self._dense = (new0, new1)
        self._dense_cap = cap

    def apply(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        """Return post-state ids for an ordered pre-state id pair."""
        dense = self._dense
        if dense is not None:
            cap = self._dense_cap
            if initiator_id < cap and responder_id < cap:
                slot = initiator_id * cap + responder_id
                post0 = int(dense[0][slot])
                if post0 >= 0:
                    self.stats.hits += 1
                    self.stats.dense_hits += 1
                    return post0, int(dense[1][slot])
        key = (initiator_id, responder_id)
        found = self._table.get(key)
        if found is not None:
            self.stats.hits += 1
            return found
        result = self._compute(initiator_id, responder_id)
        if len(self._table) < self._max_entries:
            self.stats.misses += 1
            self._table[key] = result
            self._store_dense(initiator_id, responder_id, result)
        else:
            self.stats.bypasses += 1
        return result

    def _store_dense(
        self, initiator_id: int, responder_id: int, result: tuple[int, int]
    ) -> None:
        self._grow_dense(len(self._interner))
        dense = self._dense
        if dense is None:
            return
        cap = self._dense_cap
        if initiator_id < cap and responder_id < cap:
            slot = initiator_id * cap + responder_id
            dense[0][slot] = result[0]
            dense[1][slot] = result[1]

    def apply_block(
        self, pre0: np.ndarray, pre1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Post-state ids for slot-aligned arrays of ordered pre pairs.

        The dense table resolves every stored pair with one gather; the
        remaining pairs (not yet stored, or outside the dense bound) fall
        back to one scalar :meth:`apply` per *distinct* missing pair, which
        also populates the tables for the next block.  Element order is
        preserved: ``out[i]`` is the post pair of ``(pre0[i], pre1[i])``.
        """
        size = pre0.shape[0]
        dense = self._dense
        if dense is not None and size:
            cap = self._dense_cap
            in_range = (pre0 < cap) & (pre1 < cap)
            if in_range.all():
                slots = pre0 * cap + pre1
                out0 = dense[0].take(slots)
                if (out0 >= 0).all():
                    self.stats.hits += size
                    self.stats.dense_hits += size
                    return out0.astype(np.int64), dense[1].take(slots).astype(
                        np.int64
                    )
                # Any miss drops the whole block to the generic path: it
                # resolves (and counts) every distinct pair exactly once,
                # filling the dense mirror for the next block as it goes.
        return self._apply_block_dict(pre0, pre1)

    def _apply_block_dict(
        self, pre0: np.ndarray, pre1: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generic block path: one computation per distinct ordered pair.

        Stats are kept in per-slot units on every block path (the scalar
        ``apply`` accounts each distinct pair; duplicate slots count as
        hits of the first resolution), so ``hit_rate`` means the same
        thing whether a block resolved densely or through the dict.
        """
        stride = len(self._interner)
        keys = pre0.astype(np.int64) * stride + pre1
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        out0 = np.empty(unique_keys.shape[0], dtype=np.int64)
        out1 = np.empty(unique_keys.shape[0], dtype=np.int64)
        for index, key in enumerate(unique_keys.tolist()):
            post0, post1 = self.apply(key // stride, key % stride)
            out0[index] = post0
            out1[index] = post1
        self.stats.hits += keys.shape[0] - unique_keys.shape[0]
        return out0[inverse], out1[inverse]

    def _compute(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        interner = self._interner
        pre_initiator = interner.state_of(initiator_id)
        pre_responder = interner.state_of(responder_id)
        post_initiator, post_responder = self._protocol.transition(
            pre_initiator, pre_responder
        )
        return interner.intern(post_initiator), interner.intern(post_responder)
