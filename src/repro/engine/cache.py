"""Memoized transition application over interned state ids.

Population protocol transitions are deterministic functions of the ordered
(initiator, responder) state pair, so ``T`` can be memoized exactly.  The
cache is bounded: once ``max_entries`` distinct pairs have been stored,
further misses are computed directly without insertion, so memory stays
bounded even for protocols with high-entropy components (e.g. the ``V_B``
count-up timers of PLL, whose ``count`` variable cycles through ``41 m``
values and makes most timer/timer pairs cold).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.interner import StateInterner
from repro.engine.protocol import Protocol

__all__ = ["CacheStats", "TransitionCache"]


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    bypasses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of transitions requested through the cache."""
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class TransitionCache:
    """Apply a protocol's transition on int ids with exact memoization."""

    __slots__ = ("_protocol", "_interner", "_table", "_max_entries", "stats")

    def __init__(
        self,
        protocol: Protocol,
        interner: StateInterner,
        max_entries: int = 1 << 20,
    ) -> None:
        self._protocol = protocol
        self._interner = interner
        self._table: dict[tuple[int, int], tuple[int, int]] = {}
        self._max_entries = max_entries
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._table)

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def apply(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        """Return post-state ids for an ordered pre-state id pair."""
        key = (initiator_id, responder_id)
        found = self._table.get(key)
        if found is not None:
            self.stats.hits += 1
            return found
        result = self._compute(initiator_id, responder_id)
        if len(self._table) < self._max_entries:
            self.stats.misses += 1
            self._table[key] = result
        else:
            self.stats.bypasses += 1
        return result

    def _compute(self, initiator_id: int, responder_id: int) -> tuple[int, int]:
        interner = self._interner
        pre_initiator = interner.state_of(initiator_id)
        pre_responder = interner.state_of(responder_id)
        post_initiator, post_responder = self._protocol.transition(
            pre_initiator, pre_responder
        )
        return interner.intern(post_initiator), interner.intern(post_responder)
