"""Execution traces and deterministic replay.

The paper distinguishes the random scheduler ``Gamma`` from deterministic
schedules ``gamma`` (lowercase).  A :class:`TraceRecorder` captures the
interaction sequence of a live run so it can be re-executed as a
deterministic schedule — bit-for-bit reproducible — which is how the test
suite pins down corner-case behaviours observed in random runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.protocol import Protocol, State
from repro.engine.scheduler import DeterministicSchedule
from repro.engine.simulator import AgentSimulator

__all__ = ["TraceRecorder", "ConfigurationSnapshot", "replay"]


class TraceRecorder:
    """Hook recording every interaction pair of a run."""

    def __init__(self) -> None:
        self.pairs: list[tuple[int, int]] = []

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        self.pairs.append((u, v))

    def __len__(self) -> int:
        return len(self.pairs)

    def schedule(self) -> DeterministicSchedule:
        """The recorded interactions as a replayable schedule."""
        return DeterministicSchedule(self.pairs)


@dataclass
class ConfigurationSnapshot:
    """Immutable capture of a simulator's configuration and step count."""

    states: tuple[State, ...]
    steps: int = 0
    label: str = ""
    _outputs: dict = field(default_factory=dict, repr=False)

    @classmethod
    def capture(cls, sim: AgentSimulator, label: str = "") -> "ConfigurationSnapshot":
        return cls(states=tuple(sim.configuration()), steps=sim.steps, label=label)

    def restore(self, sim: AgentSimulator) -> None:
        """Load this snapshot's configuration into ``sim`` (steps unchanged)."""
        sim.load_configuration(list(self.states))

    def output_counts(self, protocol: Protocol) -> dict[str, int]:
        """Tally of output symbols under ``protocol``."""
        tally: dict[str, int] = {}
        for state in self.states:
            symbol = protocol.output(state)
            tally[symbol] = tally.get(symbol, 0) + 1
        return tally


def replay(
    protocol: Protocol,
    n: int,
    pairs: Sequence[tuple[int, int]],
    initial: Sequence[State] | None = None,
) -> AgentSimulator:
    """Re-execute a recorded interaction sequence deterministically.

    Returns the simulator after the full schedule has run.  When ``initial``
    is given, the run starts from that configuration instead of the
    protocol's all-``s_init`` configuration.
    """
    schedule = DeterministicSchedule.validated(pairs, n)
    sim = AgentSimulator(protocol, n, scheduler=schedule)
    if initial is not None:
        sim.load_configuration(list(initial))
    sim.run(len(pairs))
    return sim
