"""Agent-based simulation engine.

:class:`AgentSimulator` executes a population protocol over ``n`` agents
with explicit per-agent identity.  It is the engine of record for anything
that needs to know *which* agent did what: one-way epidemic experiments,
traces and replay, failure injection, and per-agent instrumentation hooks.
For large-``n`` stabilization sweeps, prefer the count-based engine in
:mod:`repro.engine.multiset`, whose step cost does not grow with ``n``.

The hot loop works on interned state ids (ints); transitions are memoized
(:mod:`repro.engine.cache`).  Stabilization of monotone-leader protocols is
detected in O(1) per step via incrementally maintained output counts.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from typing import Callable, Iterable, Sequence

from repro.engine.convergence import (
    MonotoneLeaderStabilization,
    StabilizationDetector,
)
from repro.engine.interner import StateInterner
from repro.engine.kernel import make_transition_cache
from repro.engine.protocol import LEADER, Protocol, State
from repro.engine.scheduler import PairScheduler, RandomScheduler
from repro.errors import ConvergenceError, SimulationError
from repro.telemetry.core import cache_summary, telemetry_enabled
from repro.telemetry.heartbeat import make_heartbeat
from repro.telemetry.probe import make_phase_series, poll_mask as _poll_mask
from repro.telemetry.profile import StageProfile, emit_profile
from repro.telemetry.trace import make_tracer

__all__ = ["AgentSimulator", "Hook"]

#: Hook signature: ``hook(sim, u, v, pre0, pre1, post0, post1)`` where the
#: four trailing arguments are interned state ids (decode via
#: ``sim.interner.state_of``).
Hook = Callable[["AgentSimulator", int, int, int, int, int, int], None]


class AgentSimulator:
    """Execute a protocol over ``n`` identified agents.

    Parameters
    ----------
    protocol:
        The population protocol to run.
    n:
        Population size (at least 2).
    seed:
        Seed for the built-in uniformly random scheduler.  Ignored when an
        explicit ``scheduler`` is supplied.
    scheduler:
        Any object with ``next_pair() -> (u, v)``; defaults to
        :class:`~repro.engine.scheduler.RandomScheduler`.
    cache_entries:
        Bound on the transition memo table.
    use_kernel:
        ``None`` (default) resolves transitions through the compiled
        kernel when the protocol ships one (see
        :mod:`repro.engine.kernel`); ``True``/``False`` force one path.
        Trajectories are identical either way.
    """

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: int | None = None,
        scheduler: PairScheduler | None = None,
        cache_entries: int = 1 << 20,
        use_kernel: bool | None = None,
        telemetry: bool | None = None,
    ) -> None:
        if n < 2:
            raise SimulationError(f"population needs at least 2 agents, got n={n}")
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self._telemetry = telemetry
        # Stage profile (gated) and phase series (deterministic tier,
        # always on): see DESIGN.md Section 9.
        self._profile = StageProfile(enabled=telemetry_enabled(telemetry))
        self.phase_series = make_phase_series(protocol, n)
        self.interner = StateInterner()
        self.cache = make_transition_cache(
            protocol, self.interner, cache_entries, use_kernel=use_kernel
        )
        if hasattr(self.cache, "profile"):
            self.cache.profile = self._profile
        self.scheduler: PairScheduler = (
            scheduler if scheduler is not None else RandomScheduler(n, seed)
        )
        self.steps = 0
        self._output_of_id: list[str] = []
        self._hooks: list[Hook] = []
        initial_id = self.interner.intern(protocol.initial_state())
        self.states: list[int] = [initial_id] * n
        self.output_counts: Counter[str] = Counter()
        self.output_counts[self._output_for(initial_id)] = n

    # ------------------------------------------------------------------
    # configuration access
    # ------------------------------------------------------------------

    def state_of(self, agent: int) -> State:
        """Decoded state of ``agent``."""
        return self.interner.state_of(self.states[agent])

    def output_of(self, agent: int) -> str:
        """Output symbol of ``agent``."""
        return self._output_for(self.states[agent])

    @property
    def leader_count(self) -> int:
        """Number of agents currently outputting ``L``."""
        return self.output_counts.get(LEADER, 0)

    @property
    def parallel_time(self) -> float:
        """Steps executed divided by ``n`` (the paper's time unit)."""
        return self.steps / self.n

    def configuration(self) -> list[State]:
        """Decoded state of every agent (a copy)."""
        state_of = self.interner.state_of
        return [state_of(sid) for sid in self.states]

    def state_id_counts(self) -> Counter[int]:
        """Multiset of interned state ids currently present."""
        return Counter(self.states)

    def state_counts(self) -> Counter[State]:
        """Multiset of decoded states currently present."""
        state_of = self.interner.state_of
        counts: Counter[State] = Counter()
        for sid, count in self.state_id_counts().items():
            counts[state_of(sid)] = count
        return counts

    def agents_with_output(self, symbol: str) -> list[int]:
        """Indices of agents whose output is ``symbol``."""
        output_for = self._output_for
        return [
            agent
            for agent, sid in enumerate(self.states)
            if output_for(sid) == symbol
        ]

    def load_configuration(self, states: Sequence[State]) -> None:
        """Replace the whole configuration (for experiments on ``C_all``).

        The paper analyses executions from arbitrary reachable
        configurations (e.g. Lemma 9/10/12 start anywhere in ``C_all`` or
        ``B_start``); this is the entry point for constructing them.
        """
        if len(states) != self.n:
            raise SimulationError(
                f"configuration has {len(states)} states for n={self.n} agents"
            )
        intern = self.interner.intern
        self.states = [intern(state) for state in states]
        output_for = self._output_for
        self.output_counts = Counter(output_for(sid) for sid in self.states)

    def set_scheduler(self, scheduler: PairScheduler) -> None:
        """Swap the interaction source mid-run.

        Used to model partition-then-heal scenarios: run under a
        :class:`~repro.engine.scheduler.RestrictedScheduler`, then hand the
        population back to the uniformly random scheduler (experiment E13).
        """
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def add_hook(self, hook: Hook) -> None:
        """Attach a per-interaction observer (see :data:`Hook`)."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Hook) -> None:
        self._hooks.remove(hook)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _output_for(self, sid: int) -> str:
        """Output symbol for a state id, via an id-indexed side table."""
        table = self._output_of_id
        if sid >= len(table):
            interner = self.interner
            output = self.protocol.output
            for missing in range(len(table), len(interner)):
                table.append(output(interner.state_of(missing)))
        return table[sid]

    def step(self) -> tuple[int, int]:
        """Execute one interaction; returns the (initiator, responder) pair."""
        u, v = self.scheduler.next_pair()
        states = self.states
        pre0 = states[u]
        pre1 = states[v]
        post0, post1 = self.cache.apply(pre0, pre1)
        if post0 != pre0 or post1 != pre1:
            output_counts = self.output_counts
            output_for = self._output_for
            for pre in (pre0, pre1):
                symbol = output_for(pre)
                remaining = output_counts[symbol] - 1
                if remaining:
                    output_counts[symbol] = remaining
                else:
                    del output_counts[symbol]  # keep the tally zero-free
            output_counts[output_for(post0)] += 1
            output_counts[output_for(post1)] += 1
            states[u] = post0
            states[v] = post1
        self.steps += 1
        if self._hooks:
            for hook in self._hooks:
                hook(self, u, v, pre0, pre1, post0, post1)
        return u, v

    def run(
        self,
        max_steps: int,
        until: Callable[["AgentSimulator"], bool] | None = None,
        check_every: int = 1,
    ) -> int:
        """Run up to ``max_steps`` further steps; stop early if ``until``.

        Returns the number of steps actually executed in this call.  The
        ``until`` predicate is polled every ``check_every`` steps (after the
        step), so expensive predicates can be sampled sparsely.
        """
        executed = 0
        step = self.step
        if until is not None and until(self):
            return 0
        while executed < max_steps:
            step()
            executed += 1
            if until is not None and executed % check_every == 0 and until(self):
                break
        return executed

    def run_until_stabilized(
        self,
        detector: StabilizationDetector | None = None,
        max_steps: int | None = None,
        check_every: int = 1,
    ) -> int:
        """Run until the detector fires; return total steps at that point.

        Raises :class:`~repro.errors.ConvergenceError` if ``max_steps``
        (default ``5000 * n * max(1, log2 n)``) elapses first.
        """
        if detector is None:
            detector = MonotoneLeaderStabilization()
        if max_steps is None:
            max_steps = 5000 * self.n * max(1, self.n.bit_length())
        if detector.check(self):
            return self.steps
        if isinstance(detector, MonotoneLeaderStabilization) and check_every == 1:
            # Fast path: O(1) counter comparison inlined into the loop.
            executed = self._run_until_leader_count(detector.target, max_steps)
        else:
            executed = self.run(
                max_steps,
                until=detector.check,
                check_every=check_every,
            )
        if not detector.check(self):
            raise ConvergenceError(
                f"protocol {self.protocol.name!r} (n={self.n}) did not "
                f"stabilize within {max_steps} steps",
                steps=self.steps,
            )
        return self.steps

    def _run_until_leader_count(self, target: int, max_steps: int) -> int:
        output_counts = self.output_counts
        step = self.step
        executed = 0
        heartbeat = make_heartbeat(
            "agent",
            self.protocol.name,
            self.n,
            self.seed,
            max_steps,
            enabled=self._telemetry,
        )
        series = self.phase_series
        profile = self._profile
        tracer = make_tracer()
        if tracer is not None:
            profile.tracer = tracer
        trial_span = (
            nullcontext()
            if tracer is None
            else tracer.span(
                "trial",
                cat="trial",
                engine="agent",
                protocol=self.protocol.name,
                n=self.n,
                seed=self.seed,
            )
        )
        try:
            with trial_span:
                if heartbeat is None and series is None:
                    while executed < max_steps:
                        step()
                        executed += 1
                        if output_counts.get(LEADER, 0) == target:
                            break
                else:
                    # Separate loop so the poll-free path pays nothing.
                    # The poll mask follows the probe stride (bounded
                    # to [2^8, 2^14]) and depends only on the spec —
                    # poll sites never depend on the telemetry switch.
                    mask = _poll_mask(series)
                    if series is not None:
                        series.poll(self.steps, self.state_counts)
                    while executed < max_steps:
                        step()
                        executed += 1
                        if output_counts.get(LEADER, 0) == target:
                            break
                        if not executed & mask:
                            if heartbeat is not None:
                                heartbeat.maybe_beat(self.steps)
                            if series is not None:
                                series.poll(self.steps, self.state_counts)
                    if series is not None:
                        series.finish(self.steps, self.state_counts)
        finally:
            profile.tracer = None
        emit_profile(
            profile,
            "agent",
            self.protocol.name,
            self.n,
            self.seed,
            self.steps,
        )
        return executed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def distinct_states_seen(self) -> int:
        """Number of distinct states interned so far (Lemma 3 audits)."""
        return len(self.interner)

    def telemetry_summary(self) -> dict:
        """Deterministic counter summary for the trial store."""
        return {
            "engine": "agent",
            "steps": self.steps,
            "distinct_states": len(self.interner),
            "cache": cache_summary(self.cache.stats),
        }

    def phases_json(self) -> str | None:
        """Serialized phase series for the trial store, or ``None``."""
        series = self.phase_series
        return None if series is None else series.to_json()

    def describe(self) -> str:
        """One-line human-readable summary of the simulation."""
        return (
            f"{self.protocol.name}: n={self.n} steps={self.steps} "
            f"(parallel time {self.parallel_time:.2f}) "
            f"outputs={dict(self.output_counts)}"
        )

    @staticmethod
    def outputs_of(configurations: Iterable[State], protocol: Protocol) -> Counter:
        """Tally outputs of a decoded configuration (utility for tests)."""
        return Counter(protocol.output(state) for state in configurations)
