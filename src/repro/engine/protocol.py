"""Protocol interface for the population protocol model.

A population protocol (Section 2 of the paper) is a tuple
``P(Q, s_init, T, Y, pi_out)``: a finite state set ``Q``, an initial state
``s_init``, a deterministic transition function ``T : Q x Q -> Q x Q``
applied to (initiator, responder) pairs, an output alphabet ``Y`` and an
output map ``pi_out : Q -> Y``.

This module defines the abstract interface every protocol in this library
implements, plus small helpers shared by leader-election protocols. States
may be any hashable value; the engines intern them to dense integer ids
(:mod:`repro.engine.interner`), so rich state objects (named tuples,
frozen dataclasses) cost nothing in the hot loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable

from repro.errors import ProtocolError

__all__ = [
    "State",
    "Protocol",
    "LEADER",
    "FOLLOWER",
    "LeaderElectionProtocol",
    "check_symmetry",
]

#: Protocol states may be any hashable value.
State = Hashable

#: Output symbol for "leader" (``L`` in the paper).
LEADER = "L"

#: Output symbol for "follower" (``F`` in the paper).
FOLLOWER = "F"


class Protocol(ABC):
    """Abstract population protocol ``P(Q, s_init, T, Y, pi_out)``.

    Subclasses implement :meth:`initial_state`, :meth:`transition` and
    :meth:`output`.  Transitions must be *deterministic*: all randomness in
    the population protocol model comes from the scheduler, never from the
    transition function.  The engines rely on this to memoize transitions.
    """

    #: Human-readable protocol name (used in reports and benchmarks).
    name: str = "protocol"

    @abstractmethod
    def initial_state(self) -> State:
        """Return ``s_init``, the state every agent starts in."""

    @abstractmethod
    def transition(self, initiator: State, responder: State) -> tuple[State, State]:
        """Apply ``T`` to an ordered (initiator, responder) state pair.

        Must be a pure function of its arguments and must not mutate them;
        returning the argument objects unchanged is the idiomatic way to
        express a null transition.
        """

    @abstractmethod
    def output(self, state: State) -> str:
        """Return ``pi_out(state)``."""

    def state_bound(self) -> int | None:
        """Documented upper bound on ``|Q|``, or ``None`` if unstated.

        Used by the Lemma 3 state-audit experiment to compare the number of
        states actually reached against the protocol's advertised bound.
        """
        return None

    def is_symmetric(self) -> bool:
        """Whether the protocol claims the symmetry property.

        A protocol is symmetric when ``p == q`` implies the two post-states
        are equal (Section 4).  The claim is verified empirically by
        :func:`check_symmetry` over states reached in simulation.
        """
        return False

    def compile_kernel(self):
        """Opt in to the compiled transition kernels, or ``None``.

        Protocols that can express their state as a tuple of small
        integer fields and their transition as vectorized NumPy ops over
        those fields return a :class:`repro.engine.kernel.KernelSpec`
        here; the engines then resolve transitions through packed-code
        kernels instead of memoized Python ``transition`` calls (see
        :mod:`repro.engine.kernel`).  The default — ``None`` — keeps the
        classic interner+cache path, so opting in is purely a
        performance decision: kernels must agree with ``transition``
        exactly (pinned by tier-1 property tests) and never change
        trajectories or trial hashes.

        Returns
        -------
        KernelSpec | None
        """
        return None

    def phase_probe(self):
        """Opt in to phase-occupancy probing, or ``None``.

        Protocols with an internal phase structure (PLL's lottery /
        tournament / epidemic / backup epochs, majority opinion
        dynamics) return a :class:`repro.telemetry.probe.PhaseProbe`
        whose integer features are derived purely from a configuration's
        state counts.  Probes are read-only and deterministic — they
        never consume randomness and never touch trajectories — so the
        engines sample them unconditionally on a spec-determined step
        schedule (see :mod:`repro.telemetry.probe`).  Compiled protocols
        may instead attach the probe to their ``KernelSpec``
        (``phase_probe`` field); :func:`repro.telemetry.probe.phase_probe_for`
        checks both.

        Returns
        -------
        PhaseProbe | None
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class LeaderElectionProtocol(Protocol):
    """Base class for protocols whose outputs are ``L`` / ``F``.

    The leader election problem (Section 2) requires each agent to output
    ``L`` or ``F``, and the population to reach — with probability 1 — a
    configuration with exactly one ``L`` that never changes thereafter.

    Every protocol in this library additionally satisfies the *monotone
    leader* property: the number of leaders never increases and never drops
    to zero.  For such protocols, the first configuration with exactly one
    leader is already stable, which makes stabilization detection O(1) per
    step (see :mod:`repro.engine.convergence`).
    """

    #: Declared by subclasses whose leader count is monotone non-increasing
    #: and always positive.  Checked by property tests, relied upon by
    #: :class:`repro.engine.convergence.MonotoneLeaderStabilization`.
    monotone_leader: bool = True

    def is_leader_state(self, state: State) -> bool:
        """Convenience: whether ``pi_out(state) == L``."""
        return self.output(state) == LEADER


def check_symmetry(protocol: Protocol, states: Iterable[State]) -> None:
    """Verify ``T(p, p)`` produces equal post-states for each ``p`` given.

    Raises :class:`~repro.errors.ProtocolError` on the first violation.
    This is the executable form of the paper's symmetry definition
    (Section 4): ``p = q  =>  p' = q'``.
    """
    for state in states:
        post_initiator, post_responder = protocol.transition(state, state)
        if post_initiator != post_responder:
            raise ProtocolError(
                f"protocol {protocol.name!r} is not symmetric: "
                f"T({state!r}, {state!r}) = ({post_initiator!r}, {post_responder!r})"
            )
