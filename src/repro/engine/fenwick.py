"""Fenwick (binary indexed) tree for dynamic weighted sampling.

The multiset engine (:mod:`repro.engine.multiset`) keeps the configuration
as state counts and must repeatedly sample a state with probability
proportional to its count, under point updates.  A Fenwick tree gives
``O(log k)`` updates and ``O(log k)`` inverse-CDF sampling where ``k`` is
the number of distinct states — independent of the population size ``n``,
which is what makes large-``n`` stabilization runs tractable.
"""

from __future__ import annotations

__all__ = ["FenwickTree"]


class FenwickTree:
    """Fenwick tree over non-negative integer weights with sampling support.

    Indices are ``0 .. size-1``.  The tree grows automatically (capacity
    doubles) when :meth:`add` touches an index at or past the current size.
    """

    __slots__ = ("_tree", "_size", "_total")

    def __init__(self, size: int = 16) -> None:
        if size < 1:
            size = 1
        self._size = size
        self._tree = [0] * (size + 1)
        self._total = 0

    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Sum of all weights."""
        return self._total

    def _grow(self, minimum_size: int) -> None:
        new_size = self._size
        while new_size < minimum_size:
            new_size *= 2
        weights = [self.get(i) for i in range(self._size)]
        self._size = new_size
        self._tree = [0] * (new_size + 1)
        self._total = 0
        for index, weight in enumerate(weights):
            if weight:
                self.add(index, weight)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the weight at ``index`` (may grow the tree)."""
        if index < 0:
            raise IndexError(f"negative index: {index}")
        if index >= self._size:
            self._grow(index + 1)
        self._total += delta
        tree = self._tree
        i = index + 1
        size = self._size
        while i <= size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of weights at indices ``0 .. index`` inclusive."""
        if index >= self._size:
            index = self._size - 1
        total = 0
        tree = self._tree
        i = index + 1
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def get(self, index: int) -> int:
        """Weight currently stored at ``index``."""
        if index < 0 or index >= self._size:
            return 0
        return self.prefix_sum(index) - (self.prefix_sum(index - 1) if index else 0)

    def find(self, cumulative: int) -> int:
        """Smallest index whose prefix sum exceeds ``cumulative``.

        With ``cumulative`` drawn uniformly from ``[0, total)`` this samples
        an index with probability proportional to its weight.
        """
        if not 0 <= cumulative < self._total:
            raise ValueError(
                f"cumulative value {cumulative} outside [0, {self._total})"
            )
        index = 0
        bitmask = 1
        while bitmask * 2 <= self._size:
            bitmask *= 2
        tree = self._tree
        remaining = cumulative
        while bitmask:
            candidate = index + bitmask
            if candidate <= self._size and tree[candidate] <= remaining:
                index = candidate
                remaining -= tree[candidate]
            bitmask //= 2
        return index  # 0-based: `index` is count of positions fully skipped

    def weights(self) -> list[int]:
        """All weights as a plain list (for tests and debugging)."""
        return [self.get(i) for i in range(self._size)]
