"""Machine-readable engine benchmark harness.

Measures raw interaction throughput (steps/sec) and transition-cache
effectiveness for every engine over a grid of protocols and population
sizes, campaign-level **trials-per-second** for the across-trial
ensemble engine against the multiprocessing-pool baseline, and — since
the compiled protocol kernels landed — **kernel-vs-cached-delta**
comparisons per engine, and writes the result as ``BENCH_engine.json``
at the repository root: the durable, diffable record of the performance
trajectory (CI uploads it as a workflow artifact on every run; see
``.github/workflows/ci.yml``).

Since the telemetry layer landed, the harness also measures the
**telemetry overhead** — the same superbatch workload timed with the
instruments off and on — so the "near-zero cost" claim is a number CI
re-derives on every run, not a one-off measurement.

Usage::

    repro bench                          # full grid (also: python benchmarks/report.py)
    repro bench --quick                  # CI scale
    repro bench --check --check-trials --check-kernel --check-telemetry --check-faults --check-schedulers
    repro bench --no-trials --no-kernel --no-telemetry --no-faults --no-schedulers  # v1 grid only
    repro bench --out other.json

Schema: ``repro-bench-engine/8`` when the ``schedulers`` section is
present (the default), ``/7`` with ``--no-schedulers``, ``/6`` with
``--no-faults`` too, ``/4`` with ``--no-telemetry`` as well, ``/2``
with ``--no-kernel`` on top, ``/1`` with all optional sections off —
every consumer of a lower version keeps working because lower-version
fields are unchanged.  v3 added per-path ``transitions: kernel|cached``
row tags; v4 added the count-level ``superbatch`` engine rows, the
large-``n`` PLL cells (10^7 and 10^8; the agent engine sits those out,
see :data:`AGENT_MAX_N`), and ``superbatch_vs_batch`` summary ratios;
v5 added the ``telemetry`` overhead section; v6 extends that section
with the tracing+probes measurement (``trace_*`` keys — additive, so
v5 consumers keep parsing); v7 adds the ``faults`` driver-overhead
section; v8 adds the ``schedulers`` thinning-overhead section.
Consumers that key rows by engine name are unaffected: new engines are
new keys.

Gates: ``--check`` fails (exit 1) unless the batch engine beats the
multiset engine on the PLL throughput check at the largest measured
``n`` by at least ``--min-ratio``.  ``--check-superbatch`` compares the
superbatch engine against batch on the largest PLL cell carrying both.
``--check-trials`` compares the ensemble engine's trials/sec against
the pool baseline on the 64-trial PLL cell at n=4096.
``--check-kernel`` fails unless, on the PLL ``n = 1024`` cell, the
kernel-backed transition path resolves each engine's recorded request
stream at least ``--min-kernel-ratio`` times as fast as the
cached-delta path, for both the multiset and batch engines.
``--check-telemetry`` fails unless the telemetry-on run of the PLL
``n = 10^6`` superbatch cell stays within ``--max-telemetry-overhead``
times the telemetry-off run (default 1.02: at most 2% overhead), and
the tracing-on run (spans + stage profile emission into a null sink)
within ``--max-trace-overhead`` (default 2.0: tracing is opt-in
diagnostics — the measured cost of emitting the capped span stream is
~1.4x on this cell — so the gate only catches runaway regressions,
not near-zero cost).  ``--check-faults`` fails unless driving the same
superbatch cell through a near-no-op
:class:`~repro.faults.injector.FaultInjector` stays within
``--max-fault-overhead`` times the clean ``plan=None`` run (default
1.05).  ``--check-schedulers`` fails unless running the same
superbatch cell through the state-weighted thinning path with a
*neutral* weight map (every acceptance probability exactly 1.0 — the
closest thing to a no-op schedule) stays within
``--max-scheduler-overhead`` times the uniform run (default 1.10).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.engine.cache import TransitionCache
from repro.engine.interner import StateInterner
from repro.engine.kernel import compiled_kernel_for
from repro.engine.kernel.cache import KernelTransitionCache
from repro.engine.kernel.compiled import CompiledKernel
from repro.engine.superbatch import SuperBatchSimulator
from repro.errors import ConvergenceError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.orchestration.pool import build_simulator, run_specs
from repro.orchestration.registry import build_protocol
from repro.orchestration.spec import ENGINES, trial_specs
from repro.telemetry.core import TELEMETRY_ENV
from repro.telemetry.sink import EVENTS_ENV, QUIET_ENV
from repro.telemetry.trace import TRACE_ENV

REPO_ROOT = Path(__file__).resolve().parent.parent.parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"

#: (protocol registry name, population sizes) measured per engine.  The
#: large-``n`` PLL cells (10^7, 10^8) are where the count-level
#: super-batch engine earns its keep; see :data:`AGENT_MAX_N` for which
#: engines run there.
FULL_GRID = (
    ("pll", (1024, 65536, 1_000_000, 10_000_000, 100_000_000)),
    ("angluin", (1024, 65536)),
)
QUICK_GRID = (
    # The larger quick cell sits at 2^18 so the batch-vs-multiset gate
    # still grades batch inside its own regime: the kernel-backed
    # multiset engine pushed the crossover well past the old 2^14.
    ("pll", (1024, 262144)),
    ("angluin", (1024,)),
)
FULL_STEPS = 100_000
QUICK_STEPS = 20_000

#: Largest population the agent engine is measured at: its per-agent
#: state arrays make setup alone scale with ``n``, which at 10^7+ only
#: burns grid minutes documenting a regime ``auto`` never assigns it.
#: The count-vector engines (multiset, batch, superbatch) have
#: ``n``-independent setup and run the full grid.
AGENT_MAX_N = 2_000_000

#: The headline comparison: the protocol every engine is graded on.
CHECK_PROTOCOL = "pll"

#: The campaign-shaped cell the trials-per-second section measures: deep
#: enough in trials to exercise lane packing, small-to-mid in ``n`` —
#: exactly the regime campaigns spend most of their trials in (and where
#: BENCH_engine.json shows the within-trial batch engine losing to the
#: per-interaction engines).
TRIALS_PROTOCOL = "pll"
TRIALS_N = 4096
TRIALS_COUNT = 64
#: Worker processes for the pool baseline: a realistic `--jobs` choice
#: (capped at 4 so a 128-core machine doesn't skew the record), floored
#: at 2 so the baseline actually exercises the multiprocessing pool it
#: is named for rather than the serial fast path.
TRIALS_POOL_JOBS = max(2, min(4, os.cpu_count() or 1))

#: The cell the compiled-kernel comparison is graded on: the exact
#: regime ISSUE 4 names — PLL's ``41 m`` count-up timers reach ~275
#: states at n=1024, which used to drop the dense mirror and make every
#: cold pair a Python ``delta`` call.
KERNEL_PROTOCOL = "pll"
KERNEL_N = 1024
#: Campaign-shaped trials per engine for the end-to-end comparison.
KERNEL_TRIALS = 8

#: The workload the telemetry-overhead gate is graded on: the superbatch
#: engine on production-scale PLL — the hottest per-block loop telemetry
#: rides on (agent/multiset pay a masked per-step poll instead; their
#: overhead shape is the same argument, see DESIGN.md Section 8).  Full
#: stabilization at n=10^6 takes ~14 s per run, far too slow to repeat,
#: so the cell runs a fixed step budget instead: the chain is identical
#: off and on (telemetry never touches the generator), making the two
#: timings the same work to the interaction.
TELEMETRY_PROTOCOL = "pll"
TELEMETRY_N = 1_000_000
TELEMETRY_STEPS = 2_000_000
TELEMETRY_STEPS_QUICK = 800_000
#: Off/on measurement pairs; the gate grades the cleanest pair (see
#: :func:`measure_telemetry_cell` for why that is the robust statistic
#: for a ceiling on noisy hosts).  Nine pairs gives the minimum a real
#: chance of landing in a quiet scheduling window even on busy hosts.
TELEMETRY_REPEATS = 9

#: The fault-overhead cell: the same superbatch workload driven clean
#: (``plan=None`` — a plain ``run_until_stabilized``) versus through a
#: near-no-op :class:`~repro.faults.injector.FaultInjector` (one
#: single-agent corruption mid-budget), so the graded ratio bounds the
#: cost of the segment driver itself — the machinery every faulted
#: campaign trial pays — not of any particular fault.  Same
#: methodology as the telemetry cell: alternating adjacent pairs, CPU
#: time, minimum pair ratio as the ceiling statistic.
FAULTS_PROTOCOL = "pll"
FAULTS_N = 1_000_000
FAULTS_STEPS = 2_000_000
FAULTS_STEPS_QUICK = 800_000
FAULTS_REPEATS = 7

#: The scheduler-overhead cell: the same superbatch workload run uniform
#: versus through :class:`~repro.schedulers.weighted
#: .WeightedSuperBatchSimulator` under a *neutral* weight map — every
#: symbol weighs 1.0, so every proposal's acceptance probability is
#: exactly 1.0 and zero proposals are rejected.  The graded ratio
#: therefore bounds the cost of the thinning machinery itself (the
#: per-run acceptance vectors and weight-table upkeep every weighted
#: campaign cell pays), not of any particular schedule.  Same
#: methodology as the telemetry/faults cells: alternating adjacent
#: pairs, CPU time, minimum pair ratio as the ceiling statistic.
SCHEDULERS_PROTOCOL = "pll"
SCHEDULERS_N = 1_000_000
SCHEDULERS_STEPS = 2_000_000
SCHEDULERS_STEPS_QUICK = 800_000
SCHEDULERS_REPEATS = 7
SCHEDULERS_WEIGHTS = {"L": 1.0}


def measure_trials_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    trials: int | None = None,
    seed: int = 0,
    jobs: int | None = None,
    include_agent: bool = True,
) -> dict:
    """Trials-per-second for one campaign cell, per execution strategy.

    Up to four rows: the cell's multiset specs run solo serially (the
    like-for-like baseline the ensemble is graded against — same Markov
    chain, byte-identical per-seed outcomes, both single-process), the
    multiprocessing pool running the same solo specs (context: what
    ``--jobs`` buys), the pool running the historical agent engine
    (context only: a different chain — skipped in quick/CI runs where
    it just burns minutes), and the ensemble engine packing the
    multiset specs into vectorized lanes.  The cell itself is never
    reduced in quick mode: the CI gate is defined on the 64-trial PLL
    cell at n=4096.

    (Until schema v3 the gate compared single-process ensemble against
    the multi-process pool; the kernel-backed multiset engine sped the
    solo baseline up ~5x, so that cross-process comparison stopped
    separating execution *strategy* from worker count.)
    """
    # Late-bound defaults so tests (and callers) can retarget the module
    # constants without re-plumbing every call site.
    if protocol_name is None:
        protocol_name = TRIALS_PROTOCOL
    if n is None:
        n = TRIALS_N
    if trials is None:
        trials = TRIALS_COUNT
    if jobs is None:
        jobs = TRIALS_POOL_JOBS
    rows = []

    def measure(mode: str, engine: str, run) -> dict:
        start = time.perf_counter()
        outcomes = run()
        elapsed = time.perf_counter() - start
        row = {
            "mode": mode,
            "engine": engine,
            "protocol": protocol_name,
            "n": n,
            "trials": trials,
            "jobs": jobs if mode == "pool" else 1,
            "seconds": elapsed,
            "trials_per_sec": trials / elapsed,
            "total_steps": sum(outcome.steps for outcome in outcomes),
        }
        rows.append(row)
        return row

    multiset_specs = trial_specs(
        protocol_name, n, trials, base_seed=seed, engine="multiset"
    )
    agent_specs = trial_specs(
        protocol_name, n, trials, base_seed=seed, engine="agent"
    )
    print(
        f"  measuring serial    {protocol_name} n={n} x{trials} trials "
        f"(multiset, jobs=1) ...",
        flush=True,
    )
    serial_row = measure(
        "serial",
        "multiset",
        lambda: run_specs(multiset_specs, jobs=1, ensemble_lanes=0).outcomes,
    )
    print(
        f"  measuring pool      {protocol_name} n={n} x{trials} trials "
        f"(multiset, jobs={jobs}) ...",
        flush=True,
    )
    measure(
        "pool",
        "multiset",
        lambda: run_specs(multiset_specs, jobs=jobs, ensemble_lanes=0).outcomes,
    )
    if include_agent:
        print(
            f"  measuring pool      {protocol_name} n={n} x{trials} trials "
            f"(agent, jobs={jobs}) ...",
            flush=True,
        )
        measure(
            "pool",
            "agent",
            lambda: run_specs(
                agent_specs, jobs=jobs, ensemble_lanes=0
            ).outcomes,
        )
    print(
        f"  measuring ensemble  {protocol_name} n={n} x{trials} trials ...",
        flush=True,
    )
    ensemble_row = measure(
        "ensemble",
        "multiset",
        lambda: run_specs(multiset_specs, jobs=1, ensemble_lanes=2).outcomes,
    )
    baseline = next(
        row for row in rows if row["mode"] == "pool" and row["engine"] == "multiset"
    )
    return {
        "cell": {"protocol": protocol_name, "n": n, "trials": trials},
        "results": rows,
        "ensemble_vs_pool": ensemble_row["trials_per_sec"]
        / baseline["trials_per_sec"],
        "ensemble_vs_serial": ensemble_row["trials_per_sec"]
        / serial_row["trials_per_sec"],
    }


def measure_engine(
    engine: str,
    protocol_name: str,
    n: int,
    steps: int,
    seed: int = 0,
    use_kernel: bool | None = None,
) -> dict:
    """Time ``steps`` interactions of one engine on one workload.

    ``use_kernel`` forces the transition-resolution path; ``None`` takes
    the default (the compiled kernel for protocols that ship one).  The
    row's ``transitions`` field records which path actually ran.
    """
    protocol = build_protocol(protocol_name, n)
    kernelized = compiled_kernel_for(protocol) is not None
    if use_kernel is None:
        use_kernel = kernelized
    sim = build_simulator(
        protocol, n, seed=seed, engine=engine, use_kernel=use_kernel
    )
    start = time.perf_counter()
    executed = sim.run(steps)
    elapsed = time.perf_counter() - start
    if executed != steps:
        raise RuntimeError(
            f"{engine} executed {executed} of {steps} steps on "
            f"{protocol_name} n={n}"
        )
    stats = sim.cache.stats
    return {
        "engine": engine,
        "protocol": protocol_name,
        "n": n,
        "steps": steps,
        "transitions": "kernel" if use_kernel else "cached",
        "seconds": elapsed,
        "steps_per_sec": steps / elapsed,
        "distinct_states": sim.distinct_states_seen(),
        "cache": {
            "entries": len(sim.cache),
            "hits": stats.hits,
            "misses": stats.misses,
            "bypasses": stats.bypasses,
            "hit_rate": stats.hit_rate,
        },
    }


# ----------------------------------------------------------------------
# the compiled-kernel comparison cell
# ----------------------------------------------------------------------


def _fresh_cache(protocol_name: str, n: int, states, use_kernel: bool):
    """A cold cache of the requested path, interner pre-seeded in order.

    The kernel path gets a private :class:`CompiledKernel` (bypassing
    the shared registry) so the measurement includes its fills — a true
    cold-vs-cold comparison.
    """
    protocol = build_protocol(protocol_name, n)
    interner = StateInterner()
    if use_kernel:
        kernel = CompiledKernel(protocol, protocol.compile_kernel())
        cache = KernelTransitionCache(protocol, interner, kernel=kernel)
    else:
        cache = TransitionCache(protocol, interner)
    for state in states:
        interner.intern(state)
    return cache


def _measure_cold_pairs(
    engine: str, protocol_name: str, n: int, seed: int
) -> dict:
    """Kernel vs cached-delta resolving the trial's full cold pair space.

    A PLL trial at ``n = 1024`` keeps cycling its ``41 m`` count-up
    timers through fresh state pairs, so over a campaign the engines
    end up resolving essentially *every* ordered pair of reached states
    — each one a cold Python ``delta`` call on the cached path.  This
    row measures exactly that layer: discover the reached states with
    one fixed-length run (long enough for the timers to cycle well past
    stabilization), then resolve all ``S^2`` ordered pairs through a
    cold cache of each path, issued in the engine's request shape —
    scalar ``apply`` calls for the multiset engine, block-sized
    ``apply_block`` arrays (the engine's own ``~1.5 sqrt(n)`` pair
    blocks) for the batch engine.
    """
    protocol = build_protocol(protocol_name, n)
    sim = build_simulator(protocol, n, seed=seed, engine=engine)
    sim.run(60_000)
    states = sim.interner.states()
    count = len(states)
    ids = np.arange(count, dtype=np.int64)
    pre0 = np.repeat(ids, count)
    pre1 = np.tile(ids, count)

    def replay(use_kernel: bool) -> float:
        cache = _fresh_cache(protocol_name, n, states, use_kernel)
        start = time.perf_counter()
        if engine == "batch":
            block = max(64, round(1.5 * (n ** 0.5)))
            apply_block = cache.apply_block
            for lo in range(0, pre0.shape[0], block):
                apply_block(pre0[lo : lo + block], pre1[lo : lo + block])
        else:
            apply = cache.apply
            for initiator_id, responder_id in zip(
                pre0.tolist(), pre1.tolist()
            ):
                apply(initiator_id, responder_id)
        return time.perf_counter() - start

    cached_seconds = replay(False)
    kernel_seconds = replay(True)
    return {
        "engine": engine,
        "mode": "cold-pairs",
        "protocol": protocol_name,
        "n": n,
        "distinct_states": count,
        "pairs": count * count,
        "cached_seconds": cached_seconds,
        "kernel_seconds": kernel_seconds,
        "kernel_vs_cached": cached_seconds / kernel_seconds,
    }


def _measure_trials(
    engine: str, protocol_name: str, n: int, trials: int, seed: int
) -> dict:
    """Kernel vs cached-delta, end to end, campaign-shaped.

    Fresh simulator per trial, run to stabilization — how campaigns
    actually consume engines.  Trajectories are identical on both paths
    (same chain), so this is a pure execution-path comparison.
    """

    def run(use_kernel: bool) -> float:
        start = time.perf_counter()
        for trial in range(trials):
            protocol = build_protocol(protocol_name, n)
            sim = build_simulator(
                protocol,
                n,
                seed=seed + trial,
                engine=engine,
                use_kernel=use_kernel,
            )
            sim.run_until_stabilized()
        return time.perf_counter() - start

    cached_seconds = run(False)
    kernel_seconds = run(True)
    return {
        "engine": engine,
        "mode": "trials",
        "protocol": protocol_name,
        "n": n,
        "trials": trials,
        "cached_seconds": cached_seconds,
        "kernel_seconds": kernel_seconds,
        "cached_trials_per_sec": trials / cached_seconds,
        "kernel_trials_per_sec": trials / kernel_seconds,
        "kernel_vs_cached": cached_seconds / kernel_seconds,
    }


def measure_kernel_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    trials: int | None = None,
    seed: int = 0,
) -> dict:
    """The compiled-kernel comparison on the graded PLL n=1024 cell.

    Two rows per engine (multiset and batch):

    * ``cold-pairs`` — the transition-resolution layer in isolation:
      the trial's full reached-pair space through a cold cache of each
      path, in the engine's request shape (the ``--check-kernel``
      gate; this is where "no Python delta on the hot path" cashes out);
    * ``trials`` — end-to-end campaign-shaped throughput on the same
      cell (context: for the batch engine, per-block sampling machinery
      bounds the end-to-end gain at small ``n`` even with transitions
      free — see DESIGN.md Section 5).
    """
    if protocol_name is None:
        protocol_name = KERNEL_PROTOCOL
    if n is None:
        n = KERNEL_N
    if trials is None:
        trials = KERNEL_TRIALS
    rows = []
    for engine in ("multiset", "batch"):
        print(
            f"  measuring kernel    {protocol_name} n={n} "
            f"({engine} cold pairs) ...",
            flush=True,
        )
        rows.append(_measure_cold_pairs(engine, protocol_name, n, seed))
        print(
            f"  measuring kernel    {protocol_name} n={n} "
            f"({engine} x{trials} trials) ...",
            flush=True,
        )
        rows.append(_measure_trials(engine, protocol_name, n, trials, seed))
    return {
        "cell": {"protocol": protocol_name, "n": n},
        "results": rows,
    }


def measure_telemetry_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    steps: int | None = None,
    seed: int = 0,
    repeats: int | None = None,
    quick: bool = False,
) -> dict:
    """Telemetry-off vs telemetry-on timings of one superbatch workload.

    Builds the simulator directly (``build_simulator`` deliberately does
    not plumb the ctor override; the bench needs it to pin the switch
    per run regardless of the ambient ``REPRO_TELEMETRY``) and runs the
    monotone-leader stabilization loop — the only path that creates
    heartbeats — under a fixed ``max_steps`` budget, treating the
    resulting :class:`ConvergenceError` as the intended stop.  The
    chain is identical off and on (telemetry never touches the
    generator, asserted here), so the two timings are the same work to
    the interaction.

    Methodology, chosen for a *ceiling* gate on hosts whose timing
    noise can exceed the 2% effect being bounded:

    * ``repeats`` adjacent off/on pairs, order alternating per pair, so
      slow host drift (thermal, frequency, co-tenants) hits both sides
      of a pair alike instead of systematically taxing whichever runs
      second;
    * CPU time (:func:`time.process_time`), not wall-clock — scheduler
      preemption stolen by other processes is host noise, not poll
      cost;
    * the graded ``overhead_ratio`` is the **minimum** of the per-pair
      on/off ratios: timing noise is one-sided (it only ever adds
      time), so the cleanest pair is the tightest available bound on
      the true overhead.  A real per-block regression inflates *every*
      pair — including the minimum — so the gate still catches it,
      without the false failures a mean/median statistic produces under
      heavy-tailed jitter.  All per-pair ratios land in the report for
      inspection.

    The stderr heartbeat echo and the JSONL event file are silenced for
    the timed region: the gate grades the always-on poll cost of the
    default sink configuration, not I/O latency.

    Each pair additionally times a third run with span tracing *and*
    the stage profile emitting (``REPRO_TRACE=1`` with the event sink
    pointed at ``os.devnull`` — tracing needs somewhere to write, and
    the null device isolates serialization cost from disk latency).
    Phase probes are always on, so every run here carries them; the
    ``trace_*`` keys therefore bound the *additional* cost of opting
    into the full diagnostic tier over plain telemetry.
    """
    if protocol_name is None:
        protocol_name = TELEMETRY_PROTOCOL
    if n is None:
        n = TELEMETRY_N
    if steps is None:
        steps = TELEMETRY_STEPS_QUICK if quick else TELEMETRY_STEPS
    if repeats is None:
        repeats = TELEMETRY_REPEATS

    def run_once(telemetry: bool, trace: bool = False) -> tuple[float, int]:
        if trace:
            os.environ[TELEMETRY_ENV] = "1"
            os.environ[TRACE_ENV] = "1"
            os.environ[EVENTS_ENV] = os.devnull
        protocol = build_protocol(protocol_name, n)
        sim = SuperBatchSimulator(protocol, n, seed=seed, telemetry=telemetry)
        start = time.process_time()
        try:
            sim.run_until_stabilized(max_steps=steps)
        except ConvergenceError:
            pass  # budget exhausted: the measured workload, not a failure
        elapsed = time.process_time() - start
        if trace:
            os.environ.pop(TELEMETRY_ENV, None)
            os.environ.pop(TRACE_ENV, None)
            os.environ.pop(EVENTS_ENV, None)
        return elapsed, sim.steps

    off_times: list[float] = []
    on_times: list[float] = []
    trace_times: list[float] = []
    off_steps = on_steps = trace_steps = 0
    env_before = {
        key: os.environ.get(key)
        for key in (QUIET_ENV, EVENTS_ENV, TELEMETRY_ENV, TRACE_ENV)
    }
    os.environ[QUIET_ENV] = "1"
    os.environ.pop(EVENTS_ENV, None)
    os.environ.pop(TRACE_ENV, None)
    try:
        for repeat in range(repeats):
            print(
                f"  measuring telemetry {protocol_name} n={n} "
                f"(superbatch, {steps:,} step budget, "
                f"pair {repeat + 1}/{repeats}) ...",
                flush=True,
            )
            if repeat % 2 == 0:
                seconds, off_steps = run_once(False)
                off_times.append(seconds)
                seconds, on_steps = run_once(True)
                on_times.append(seconds)
            else:
                seconds, on_steps = run_once(True)
                on_times.append(seconds)
                seconds, off_steps = run_once(False)
                off_times.append(seconds)
            seconds, trace_steps = run_once(True, trace=True)
            trace_times.append(seconds)
    finally:
        for key, value in env_before.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    if off_steps != on_steps or off_steps != trace_steps:
        raise RuntimeError(
            f"telemetry changed the chain: {off_steps} steps off vs "
            f"{on_steps} on vs {trace_steps} traced "
            f"({protocol_name} n={n} seed={seed})"
        )
    pair_ratios = [on / off for on, off in zip(on_times, off_times)]
    trace_pair_ratios = [
        traced / off for traced, off in zip(trace_times, off_times)
    ]
    off_best = min(off_times)
    on_best = min(on_times)
    trace_best = min(trace_times)
    return {
        "cell": {
            "protocol": protocol_name,
            "n": n,
            "engine": "superbatch",
            "max_steps": steps,
        },
        "seed": seed,
        "repeats": repeats,
        "steps": off_steps,
        "timer": "process_time",
        "off_seconds": off_best,
        "on_seconds": on_best,
        "off_steps_per_sec": off_steps / off_best,
        "on_steps_per_sec": on_steps / on_best,
        "pair_ratios": pair_ratios,
        "best_vs_best_ratio": on_best / off_best,
        "overhead_ratio": min(pair_ratios),
        "trace_seconds": trace_best,
        "trace_steps_per_sec": trace_steps / trace_best,
        "trace_pair_ratios": trace_pair_ratios,
        "trace_overhead_ratio": min(trace_pair_ratios),
    }


def measure_faults_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    steps: int | None = None,
    seed: int = 0,
    repeats: int | None = None,
    quick: bool = False,
) -> dict:
    """Clean vs injector-driven timings of one superbatch workload.

    The clean side is the exact ``plan=None`` path campaigns run — a
    plain ``run_until_stabilized`` under a fixed budget, with the
    resulting :class:`ConvergenceError` as the intended stop.  The
    faulted side drives the same budget through a
    :class:`~repro.faults.injector.FaultInjector` whose one-event plan
    corrupts a *single* agent mid-budget: the closest thing to a no-op
    plan the validator admits, so the measured difference is the
    segment-driving machinery (an extra ``run_until_stabilized``
    re-entry plus one count-vector rewrite), not fault work.  Both
    sides execute exactly ``steps`` interactions (asserted), and the
    single-state perturbation leaves superbatch's per-block cost — a
    function of the distinct-state count, which changes by at most one
    — statistically indistinguishable.

    Pairing, timer, and the minimum-pair-ratio ceiling statistic follow
    :func:`measure_telemetry_cell` (see there for the rationale on
    noisy hosts).
    """
    if protocol_name is None:
        protocol_name = FAULTS_PROTOCOL
    if n is None:
        n = FAULTS_N
    if steps is None:
        steps = FAULTS_STEPS_QUICK if quick else FAULTS_STEPS
    if repeats is None:
        repeats = FAULTS_REPEATS
    plan = FaultPlan.create(
        [{"kind": "corrupt", "at_step": steps // 2, "count": 1}]
    )

    def run_once(faulted: bool) -> tuple[float, int]:
        protocol = build_protocol(protocol_name, n)
        sim = SuperBatchSimulator(protocol, n, seed=seed)
        injector = FaultInjector(plan, n, seed) if faulted else None
        start = time.process_time()
        try:
            if injector is not None:
                injector.drive(sim, max_steps=steps)
            else:
                sim.run_until_stabilized(max_steps=steps)
        except ConvergenceError:
            pass  # budget exhausted: the measured workload, not a failure
        return time.process_time() - start, sim.steps

    clean_times: list[float] = []
    faulted_times: list[float] = []
    clean_steps = faulted_steps = 0
    for repeat in range(repeats):
        print(
            f"  measuring faults    {protocol_name} n={n} "
            f"(superbatch, {steps:,} step budget, "
            f"pair {repeat + 1}/{repeats}) ...",
            flush=True,
        )
        if repeat % 2 == 0:
            seconds, clean_steps = run_once(False)
            clean_times.append(seconds)
            seconds, faulted_steps = run_once(True)
            faulted_times.append(seconds)
        else:
            seconds, faulted_steps = run_once(True)
            faulted_times.append(seconds)
            seconds, clean_steps = run_once(False)
            clean_times.append(seconds)
    if clean_steps != faulted_steps:
        raise RuntimeError(
            f"fault driver changed the executed budget: {clean_steps} "
            f"clean vs {faulted_steps} faulted "
            f"({protocol_name} n={n} seed={seed})"
        )
    pair_ratios = [
        faulted / clean for faulted, clean in zip(faulted_times, clean_times)
    ]
    clean_best = min(clean_times)
    faulted_best = min(faulted_times)
    return {
        "cell": {
            "protocol": protocol_name,
            "n": n,
            "engine": "superbatch",
            "max_steps": steps,
        },
        "seed": seed,
        "repeats": repeats,
        "steps": clean_steps,
        "timer": "process_time",
        "plan": plan.canonical(),
        "clean_seconds": clean_best,
        "faulted_seconds": faulted_best,
        "clean_steps_per_sec": clean_steps / clean_best,
        "faulted_steps_per_sec": faulted_steps / faulted_best,
        "pair_ratios": pair_ratios,
        "best_vs_best_ratio": faulted_best / clean_best,
        "overhead_ratio": min(pair_ratios),
    }


def measure_schedulers_cell(
    protocol_name: str | None = None,
    n: int | None = None,
    steps: int | None = None,
    seed: int = 0,
    repeats: int | None = None,
    quick: bool = False,
) -> dict:
    """Uniform vs neutrally-weighted timings of one superbatch workload.

    The uniform side is the exact ``scheduler=None`` path campaigns run;
    the weighted side drives the same fixed budget through
    :class:`~repro.schedulers.weighted.WeightedSuperBatchSimulator` with
    the neutral map ``{"L": 1.0}``: ``wmax = 1`` makes every acceptance
    probability exactly 1.0, so no proposal is rejected and both sides
    execute exactly ``steps`` chain interactions (asserted).  The
    measured difference is the thinning machinery — per-run acceptance
    vectors, Binomial draws, and weight-table upkeep — which is what
    every state-weighted campaign cell pays *on top of* the rejected
    proposals its actual weight map induces.

    Pairing, timer, and the minimum-pair-ratio ceiling statistic follow
    :func:`measure_telemetry_cell` (see there for the rationale on
    noisy hosts).
    """
    from repro.schedulers.weighted import WeightedSuperBatchSimulator

    if protocol_name is None:
        protocol_name = SCHEDULERS_PROTOCOL
    if n is None:
        n = SCHEDULERS_N
    if steps is None:
        steps = SCHEDULERS_STEPS_QUICK if quick else SCHEDULERS_STEPS
    if repeats is None:
        repeats = SCHEDULERS_REPEATS

    def run_once(weighted: bool) -> tuple[float, int]:
        protocol = build_protocol(protocol_name, n)
        if weighted:
            sim = WeightedSuperBatchSimulator(
                protocol, n, SCHEDULERS_WEIGHTS, seed=seed
            )
        else:
            sim = SuperBatchSimulator(protocol, n, seed=seed)
        start = time.process_time()
        try:
            sim.run_until_stabilized(max_steps=steps)
        except ConvergenceError:
            pass  # budget exhausted: the measured workload, not a failure
        return time.process_time() - start, sim.steps

    uniform_times: list[float] = []
    weighted_times: list[float] = []
    uniform_steps = weighted_steps = 0
    for repeat in range(repeats):
        print(
            f"  measuring scheduler {protocol_name} n={n} "
            f"(superbatch, {steps:,} step budget, "
            f"pair {repeat + 1}/{repeats}) ...",
            flush=True,
        )
        if repeat % 2 == 0:
            seconds, uniform_steps = run_once(False)
            uniform_times.append(seconds)
            seconds, weighted_steps = run_once(True)
            weighted_times.append(seconds)
        else:
            seconds, weighted_steps = run_once(True)
            weighted_times.append(seconds)
            seconds, uniform_steps = run_once(False)
            uniform_times.append(seconds)
    if uniform_steps != weighted_steps:
        raise RuntimeError(
            f"neutral thinning changed the executed budget: "
            f"{uniform_steps} uniform vs {weighted_steps} weighted "
            f"({protocol_name} n={n} seed={seed})"
        )
    pair_ratios = [
        weighted / uniform
        for weighted, uniform in zip(weighted_times, uniform_times)
    ]
    uniform_best = min(uniform_times)
    weighted_best = min(weighted_times)
    return {
        "cell": {
            "protocol": protocol_name,
            "n": n,
            "engine": "superbatch",
            "max_steps": steps,
        },
        "seed": seed,
        "repeats": repeats,
        "steps": uniform_steps,
        "timer": "process_time",
        "weights": dict(SCHEDULERS_WEIGHTS),
        "uniform_seconds": uniform_best,
        "weighted_seconds": weighted_best,
        "uniform_steps_per_sec": uniform_steps / uniform_best,
        "weighted_steps_per_sec": weighted_steps / weighted_best,
        "pair_ratios": pair_ratios,
        "best_vs_best_ratio": weighted_best / uniform_best,
        "overhead_ratio": min(pair_ratios),
    }


def generate_report(
    quick: bool = False,
    seed: int = 0,
    trials_section: bool = True,
    kernel_section: bool = True,
    telemetry_section: bool = True,
    faults_section: bool = True,
    schedulers_section: bool = True,
) -> dict:
    """Run the full engine x protocol x n grid; return the report dict.

    ``trials_section`` adds the campaign-level trials-per-second cell;
    ``kernel_section`` adds the compiled-kernel comparison cell and
    measures every kernel-compiled grid cell on both paths (two rows —
    kernel and cached — per engine and cell); ``telemetry_section``
    adds the telemetry-overhead cell; ``faults_section`` adds the
    fault-driver-overhead cell; ``schedulers_section`` adds the
    scheduler-thinning-overhead cell.  Fields are strictly additive
    over the lower-version layouts, so older consumers keep parsing.
    """
    grid = QUICK_GRID if quick else FULL_GRID
    steps = QUICK_STEPS if quick else FULL_STEPS
    results = []
    for protocol_name, ns in grid:
        kernelized = (
            compiled_kernel_for(build_protocol(protocol_name, 2)) is not None
        )
        for n in ns:
            for engine in ENGINES:
                if engine == "agent" and n > AGENT_MAX_N:
                    continue
                modes: tuple[bool | None, ...] = (None,)
                if kernel_section and kernelized:
                    modes = (False, True)
                for use_kernel in modes:
                    path = (
                        "default"
                        if use_kernel is None
                        else ("kernel" if use_kernel else "cached")
                    )
                    print(
                        f"  measuring {engine:9s} {protocol_name:9s} "
                        f"n={n} ({path}) ...",
                        flush=True,
                    )
                    results.append(
                        measure_engine(
                            engine,
                            protocol_name,
                            n,
                            steps,
                            seed=seed,
                            use_kernel=use_kernel,
                        )
                    )
    if schedulers_section:
        schema = "repro-bench-engine/8"
    elif faults_section:
        schema = "repro-bench-engine/7"
    elif telemetry_section:
        schema = "repro-bench-engine/6"
    elif kernel_section:
        schema = "repro-bench-engine/4"
    elif trials_section:
        schema = "repro-bench-engine/2"
    else:
        schema = "repro-bench-engine/1"
    report = {
        "schema": schema,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "quick": quick,
        "steps_per_cell": steps,
        "seed": seed,
        "results": results,
        "summary": summarize(results),
    }
    if trials_section:
        report["trials"] = measure_trials_cell(
            seed=seed, include_agent=not quick
        )
    if kernel_section:
        report["kernel"] = measure_kernel_cell(seed=seed)
    if telemetry_section:
        report["telemetry"] = measure_telemetry_cell(seed=seed, quick=quick)
    if faults_section:
        report["faults"] = measure_faults_cell(seed=seed, quick=quick)
    if schedulers_section:
        report["schedulers"] = measure_schedulers_cell(seed=seed, quick=quick)
    return report


def _default_rows(results: list[dict]) -> list[dict]:
    """One row per (protocol, n, engine): the default execution path.

    The kernel row wins when both paths were measured — that is what
    ``auto``/default construction runs — so v1/v2 consumers keyed on
    engine names keep reading "what you get".
    """
    chosen: dict[tuple[str, int, str], dict] = {}
    for row in results:
        key = (row["protocol"], row["n"], row["engine"])
        current = chosen.get(key)
        if current is None or row.get("transitions") == "kernel":
            chosen[key] = row
    return list(chosen.values())


def summarize(results: list[dict]) -> dict:
    """Cross-engine ratios per (protocol, n), keyed for easy diffing.

    Engine entries report the default-path (kernel where available)
    rates; cells measured on both paths additionally get a
    ``kernel_vs_cached`` sub-mapping per engine.
    """
    by_cell: dict[tuple[str, int], dict[str, float]] = {}
    for row in _default_rows(results):
        cell = by_cell.setdefault((row["protocol"], row["n"]), {})
        cell[row["engine"]] = row["steps_per_sec"]
    paths: dict[tuple[str, int], dict[str, dict[str, float]]] = {}
    for row in results:
        transitions = row.get("transitions")
        if transitions is None:
            continue
        cell = paths.setdefault((row["protocol"], row["n"]), {})
        cell.setdefault(row["engine"], {})[transitions] = row["steps_per_sec"]
    summary = {}
    for (protocol_name, n), cell in sorted(by_cell.items()):
        entry = dict(cell)
        if "batch" in cell and "multiset" in cell:
            entry["batch_vs_multiset"] = cell["batch"] / cell["multiset"]
        if "batch" in cell and "agent" in cell:
            entry["batch_vs_agent"] = cell["batch"] / cell["agent"]
        if "superbatch" in cell and "batch" in cell:
            entry["superbatch_vs_batch"] = cell["superbatch"] / cell["batch"]
        ratios = {
            engine: modes["kernel"] / modes["cached"]
            for engine, modes in paths.get((protocol_name, n), {}).items()
            if "kernel" in modes and "cached" in modes
        }
        if ratios:
            entry["kernel_vs_cached"] = ratios
        summary[f"{protocol_name}/n={n}"] = entry
    return summary


def check_batch_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when batch misses ``min_ratio`` x multiset, else None.

    Graded on :data:`CHECK_PROTOCOL` at the largest measured ``n`` —
    the regime the batch engine exists for.
    """
    cells = [
        (row["n"], row)
        for row in report["results"]
        if row["protocol"] == CHECK_PROTOCOL
    ]
    if not cells:
        return f"no {CHECK_PROTOCOL!r} rows to check"
    largest = max(n for n, _ in cells)
    ratio = report["summary"][f"{CHECK_PROTOCOL}/n={largest}"].get(
        "batch_vs_multiset"
    )
    if ratio is None:
        return "summary lacks a batch_vs_multiset ratio"
    if ratio < min_ratio:
        return (
            f"batch engine is {ratio:.2f}x multiset on {CHECK_PROTOCOL} at "
            f"n={largest}; required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: batch is {ratio:.2f}x multiset on {CHECK_PROTOCOL} "
        f"at n={largest} (required >= {min_ratio:.2f}x)"
    )
    return None


def check_superbatch_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when superbatch misses ``min_ratio`` x batch, else None.

    Graded on :data:`CHECK_PROTOCOL` at the largest measured ``n`` where
    both engines have rows — the regime the count-level engine exists
    for (the largest quick-mode PLL cell in CI, the 10^8 cell on the
    full grid).  Tolerant of pre-v4 reports: a missing ratio is itself
    the error.
    """
    cells = []
    for key, entry in report.get("summary", {}).items():
        if not key.startswith(f"{CHECK_PROTOCOL}/n="):
            continue
        ratio = entry.get("superbatch_vs_batch")
        if ratio is not None:
            cells.append((int(key.split("n=")[1]), float(ratio)))
    if not cells:
        return "summary lacks a superbatch_vs_batch ratio to check"
    largest, ratio = max(cells)
    if ratio < min_ratio:
        return (
            f"superbatch engine is {ratio:.2f}x batch on {CHECK_PROTOCOL} "
            f"at n={largest}; required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: superbatch is {ratio:.2f}x batch on {CHECK_PROTOCOL} "
        f"at n={largest} (required >= {min_ratio:.2f}x)"
    )
    return None


def check_ensemble_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when ensemble misses ``min_ratio`` x the baseline.

    Graded against the serial solo baseline (same chain, same single
    process — a pure execution-strategy comparison) when the report has
    one; v2 reports fall back to the historical pool comparison.
    Tolerant of v1 reports: a missing ``trials`` section is itself the
    error (the gate cannot pass on a report that never measured it).
    """
    trials = report.get("trials")
    if not trials:
        return "report has no trials section to check"
    ratio = trials.get("ensemble_vs_serial")
    baseline = "serial solo baseline"
    if ratio is None:
        ratio = trials.get("ensemble_vs_pool")
        baseline = "pool baseline"
    if ratio is None:
        return "trials section lacks an ensemble_vs_serial/pool ratio"
    cell = trials.get("cell", {})
    label = (
        f"{cell.get('protocol', '?')} n={cell.get('n', '?')} "
        f"x{cell.get('trials', '?')} trials"
    )
    if ratio < min_ratio:
        return (
            f"ensemble is {ratio:.2f}x the {baseline} on {label}; "
            f"required >= {min_ratio:.2f}x"
        )
    print(
        f"check ok: ensemble is {ratio:.2f}x the {baseline} on {label} "
        f"(required >= {min_ratio:.2f}x)"
    )
    return None


def check_kernel_speedup(report: dict, min_ratio: float) -> str | None:
    """Error message when a kernel cold-pairs row misses ``min_ratio``.

    Graded on the ``cold-pairs`` rows of the kernel cell — the
    transition-resolution layer the kernels replace — for both the
    multiset and batch engines.  Tolerant of v1/v2 reports: a missing
    section is itself the error.
    """
    section = report.get("kernel")
    if not section:
        return "report has no kernel section to check"
    cell = section.get("cell", {})
    label = f"{cell.get('protocol', '?')} n={cell.get('n', '?')}"
    graded = {
        row["engine"]: row
        for row in section.get("results", ())
        if row.get("mode") == "cold-pairs"
    }
    for engine in ("multiset", "batch"):
        row = graded.get(engine)
        if row is None:
            return f"kernel section lacks a {engine} cold-pairs row"
        ratio = row.get("kernel_vs_cached")
        if ratio is None:
            return f"{engine} cold-pairs row lacks a kernel_vs_cached ratio"
        if ratio < min_ratio:
            return (
                f"kernel path is {ratio:.2f}x the cached-delta path on the "
                f"{engine} cold pairs ({label}); required >= {min_ratio:.2f}x"
            )
    ratios = ", ".join(
        f"{engine} {graded[engine]['kernel_vs_cached']:.2f}x"
        for engine in ("multiset", "batch")
    )
    print(
        f"check ok: kernel vs cached-delta on {label} cold pairs: {ratios} "
        f"(required >= {min_ratio:.2f}x)"
    )
    return None


def check_telemetry_overhead(
    report: dict, max_ratio: float, max_trace_ratio: float | None = None
) -> str | None:
    """Error message when telemetry-on exceeds ``max_ratio`` x off.

    Gates graded as *ceilings*: the passive instruments are supposed to
    cost nothing, so the on-run must stay within ``max_ratio`` times the
    off-run on the superbatch overhead cell; the tracing+probes run
    (when the report carries the v6 ``trace_*`` keys and
    ``max_trace_ratio`` is given) within ``max_trace_ratio`` — a looser
    bound, since span emission is opt-in diagnostics rather than an
    always-on cost.  Tolerant of pre-v5 reports: a missing section is
    itself the error; a v5 report without ``trace_*`` keys fails only
    the trace half.
    """
    section = report.get("telemetry")
    if not section:
        return "report has no telemetry section to check"
    ratio = section.get("overhead_ratio")
    if ratio is None:
        return "telemetry section lacks an overhead_ratio"
    cell = section.get("cell", {})
    label = (
        f"{cell.get('protocol', '?')} n={cell.get('n', '?')} "
        f"({cell.get('engine', '?')}, {section.get('steps', '?')} steps)"
    )
    if ratio > max_ratio:
        return (
            f"telemetry-on run is {ratio:.3f}x the telemetry-off run on "
            f"{label}; required <= {max_ratio:.2f}x"
        )
    print(
        f"check ok: telemetry-on is {ratio:.3f}x telemetry-off on {label} "
        f"(required <= {max_ratio:.2f}x)"
    )
    if max_trace_ratio is not None:
        trace_ratio = section.get("trace_overhead_ratio")
        if trace_ratio is None:
            return "telemetry section lacks a trace_overhead_ratio"
        if trace_ratio > max_trace_ratio:
            return (
                f"tracing-on run is {trace_ratio:.3f}x the telemetry-off "
                f"run on {label}; required <= {max_trace_ratio:.2f}x"
            )
        print(
            f"check ok: tracing+probes is {trace_ratio:.3f}x telemetry-off "
            f"on {label} (required <= {max_trace_ratio:.2f}x)"
        )
    return None


def check_fault_overhead(report: dict, max_ratio: float) -> str | None:
    """Error message when the injector-driven run exceeds ``max_ratio``
    times the clean run.

    A ceiling gate like :func:`check_telemetry_overhead`: ``plan=None``
    trials must cost nothing extra, and the segment driver a faulted
    trial pays must stay within ``max_ratio`` of the clean loop on the
    superbatch overhead cell.  Tolerant of pre-v7 reports: a missing
    section is itself the error.
    """
    section = report.get("faults")
    if not section:
        return "report has no faults section to check"
    ratio = section.get("overhead_ratio")
    if ratio is None:
        return "faults section lacks an overhead_ratio"
    cell = section.get("cell", {})
    label = (
        f"{cell.get('protocol', '?')} n={cell.get('n', '?')} "
        f"({cell.get('engine', '?')}, {section.get('steps', '?')} steps)"
    )
    if ratio > max_ratio:
        return (
            f"injector-driven run is {ratio:.3f}x the clean run on "
            f"{label}; required <= {max_ratio:.2f}x"
        )
    print(
        f"check ok: fault driver is {ratio:.3f}x the clean run on {label} "
        f"(required <= {max_ratio:.2f}x)"
    )
    return None


def check_scheduler_overhead(report: dict, max_ratio: float) -> str | None:
    """Error message when the neutrally-weighted run exceeds ``max_ratio``
    times the uniform run.

    A ceiling gate like :func:`check_fault_overhead`: state-weighted
    campaign cells ride the thinned superbatch sampler, and its
    machinery — acceptance vectors, Binomial draws, weight-table upkeep
    — must stay within ``max_ratio`` of the uniform engine on the
    superbatch overhead cell.  Tolerant of pre-v8 reports: a missing
    section is itself the error.
    """
    section = report.get("schedulers")
    if not section:
        return "report has no schedulers section to check"
    ratio = section.get("overhead_ratio")
    if ratio is None:
        return "schedulers section lacks an overhead_ratio"
    cell = section.get("cell", {})
    label = (
        f"{cell.get('protocol', '?')} n={cell.get('n', '?')} "
        f"({cell.get('engine', '?')}, {section.get('steps', '?')} steps)"
    )
    if ratio > max_ratio:
        return (
            f"neutrally-weighted run is {ratio:.3f}x the uniform run on "
            f"{label}; required <= {max_ratio:.2f}x"
        )
    print(
        f"check ok: weighted thinning is {ratio:.3f}x the uniform run on "
        f"{label} (required <= {max_ratio:.2f}x)"
    )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced grid for CI smoke runs",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless batch >= --min-ratio x multiset on PLL",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.0,
        help="speedup the --check gate requires (default 1.0)",
    )
    parser.add_argument(
        "--check-superbatch",
        action="store_true",
        help=(
            "fail unless superbatch >= --min-superbatch-ratio x batch on "
            "the largest measured PLL cell"
        ),
    )
    parser.add_argument(
        "--min-superbatch-ratio",
        type=float,
        default=1.0,
        help="speedup the --check-superbatch gate requires (default 1.0)",
    )
    parser.add_argument(
        "--no-trials",
        action="store_true",
        help="skip the trials-per-second section",
    )
    parser.add_argument(
        "--check-trials",
        action="store_true",
        help=(
            "fail unless ensemble trials/sec >= --min-trials-ratio x the "
            "multiprocessing-pool baseline on the campaign cell"
        ),
    )
    parser.add_argument(
        "--min-trials-ratio",
        type=float,
        default=1.0,
        help="speedup the --check-trials gate requires (default 1.0)",
    )
    parser.add_argument(
        "--no-kernel",
        action="store_true",
        help="skip the kernel-vs-cached section (and per-path grid rows)",
    )
    parser.add_argument(
        "--check-kernel",
        action="store_true",
        help=(
            "fail unless the kernel path >= --min-kernel-ratio x the "
            "cached-delta path on the PLL n=1024 streams (multiset, batch)"
        ),
    )
    parser.add_argument(
        "--min-kernel-ratio",
        type=float,
        default=1.0,
        help="speedup the --check-kernel gate requires (default 1.0)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="skip the telemetry-overhead section",
    )
    parser.add_argument(
        "--check-telemetry",
        action="store_true",
        help=(
            "fail unless the telemetry-on run stays within "
            "--max-telemetry-overhead x the telemetry-off run on the "
            "superbatch overhead cell"
        ),
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=1.02,
        help=(
            "overhead ratio ceiling the --check-telemetry gate enforces "
            "(default 1.02: at most 2%%)"
        ),
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        default=2.0,
        help=(
            "ceiling --check-telemetry enforces on the tracing+probes "
            "run (default 2.0: opt-in diagnostics, graded only against "
            "runaway cost)"
        ),
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-driver-overhead section",
    )
    parser.add_argument(
        "--check-faults",
        action="store_true",
        help=(
            "fail unless the injector-driven run stays within "
            "--max-fault-overhead x the clean run on the superbatch "
            "overhead cell"
        ),
    )
    parser.add_argument(
        "--max-fault-overhead",
        type=float,
        default=1.05,
        help=(
            "overhead ratio ceiling the --check-faults gate enforces "
            "(default 1.05: at most 5%%)"
        ),
    )
    parser.add_argument(
        "--no-schedulers",
        action="store_true",
        help="skip the scheduler-thinning-overhead section",
    )
    parser.add_argument(
        "--check-schedulers",
        action="store_true",
        help=(
            "fail unless the neutrally-weighted run stays within "
            "--max-scheduler-overhead x the uniform run on the "
            "superbatch overhead cell"
        ),
    )
    parser.add_argument(
        "--max-scheduler-overhead",
        type=float,
        default=1.10,
        help=(
            "overhead ratio ceiling the --check-schedulers gate enforces "
            "(default 1.10: at most 10%%)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.check_trials and args.no_trials:
        parser.error("--check-trials requires the trials section")
    if args.check_kernel and args.no_kernel:
        parser.error("--check-kernel requires the kernel section")
    if args.check_telemetry and args.no_telemetry:
        parser.error("--check-telemetry requires the telemetry section")
    if args.check_faults and args.no_faults:
        parser.error("--check-faults requires the faults section")
    if args.check_schedulers and args.no_schedulers:
        parser.error("--check-schedulers requires the schedulers section")
    report = generate_report(
        quick=args.quick,
        seed=args.seed,
        trials_section=not args.no_trials,
        kernel_section=not args.no_kernel,
        telemetry_section=not args.no_telemetry,
        faults_section=not args.no_faults,
        schedulers_section=not args.no_schedulers,
    )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, entry in report["summary"].items():
        ratio = entry.get("batch_vs_multiset")
        suffix = f"  (batch/multiset {ratio:.2f}x)" if ratio else ""
        super_ratio = entry.get("superbatch_vs_batch")
        if super_ratio:
            suffix += f"  (superbatch/batch {super_ratio:.2f}x)"
        rates = ", ".join(
            f"{engine} {entry[engine]:,.0f}/s"
            for engine in ("agent", "multiset", "batch", "superbatch")
            if engine in entry
        )
        print(f"  {key:18s} {rates}{suffix}")
        kernel_ratios = entry.get("kernel_vs_cached")
        if kernel_ratios:
            rendered = ", ".join(
                f"{engine} {value:.2f}x"
                for engine, value in sorted(kernel_ratios.items())
            )
            print(f"  {'':18s} kernel/cached: {rendered}")
    trials = report.get("trials")
    if trials:
        cell = trials["cell"]
        print(
            f"  trials cell {cell['protocol']}/n={cell['n']} "
            f"x{cell['trials']}:"
        )
        for row in trials["results"]:
            print(
                f"    {row['mode']:9s} ({row['engine']:9s} jobs={row['jobs']}) "
                f"{row['trials_per_sec']:8.2f} trials/s  "
                f"({row['seconds']:.1f}s)"
            )
        print(f"    ensemble/pool {trials['ensemble_vs_pool']:.2f}x")
    kernel = report.get("kernel")
    if kernel:
        cell = kernel["cell"]
        print(f"  kernel cell {cell['protocol']}/n={cell['n']}:")
        for row in kernel["results"]:
            print(
                f"    {row['engine']:9s} {row['mode']:7s} "
                f"kernel/cached {row['kernel_vs_cached']:6.2f}x  "
                f"({row['cached_seconds']:.2f}s -> "
                f"{row['kernel_seconds']:.2f}s)"
            )
    telemetry = report.get("telemetry")
    if telemetry:
        cell = telemetry["cell"]
        print(
            f"  telemetry cell {cell['protocol']}/n={cell['n']} "
            f"({cell['engine']}, {telemetry['steps']:,} steps):"
        )
        print(
            f"    off {telemetry['off_steps_per_sec']:,.0f} steps/s  "
            f"on {telemetry['on_steps_per_sec']:,.0f} steps/s  "
            f"overhead {telemetry['overhead_ratio']:.3f}x"
        )
    faults = report.get("faults")
    if faults:
        cell = faults["cell"]
        print(
            f"  faults cell {cell['protocol']}/n={cell['n']} "
            f"({cell['engine']}, {faults['steps']:,} steps):"
        )
        print(
            f"    clean {faults['clean_steps_per_sec']:,.0f} steps/s  "
            f"faulted {faults['faulted_steps_per_sec']:,.0f} steps/s  "
            f"overhead {faults['overhead_ratio']:.3f}x"
        )
    schedulers = report.get("schedulers")
    if schedulers:
        cell = schedulers["cell"]
        print(
            f"  schedulers cell {cell['protocol']}/n={cell['n']} "
            f"({cell['engine']}, {schedulers['steps']:,} steps):"
        )
        print(
            f"    uniform {schedulers['uniform_steps_per_sec']:,.0f} steps/s  "
            f"weighted {schedulers['weighted_steps_per_sec']:,.0f} steps/s  "
            f"overhead {schedulers['overhead_ratio']:.3f}x"
        )
    failures = []
    if args.check:
        error = check_batch_speedup(report, args.min_ratio)
        if error is not None:
            failures.append(error)
    if args.check_superbatch:
        error = check_superbatch_speedup(report, args.min_superbatch_ratio)
        if error is not None:
            failures.append(error)
    if args.check_trials:
        error = check_ensemble_speedup(report, args.min_trials_ratio)
        if error is not None:
            failures.append(error)
    if args.check_kernel:
        error = check_kernel_speedup(report, args.min_kernel_ratio)
        if error is not None:
            failures.append(error)
    if args.check_telemetry:
        error = check_telemetry_overhead(
            report, args.max_telemetry_overhead, args.max_trace_overhead
        )
        if error is not None:
            failures.append(error)
    if args.check_faults:
        error = check_fault_overhead(report, args.max_fault_overhead)
        if error is not None:
            failures.append(error)
    if args.check_schedulers:
        error = check_scheduler_overhead(report, args.max_scheduler_overhead)
        if error is not None:
            failures.append(error)
    for error in failures:
        print(f"check FAILED: {error}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
