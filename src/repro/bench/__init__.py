"""Benchmark harnesses importable as part of the package.

:mod:`repro.bench.report` is the machine-readable engine benchmark
(the producer of ``BENCH_engine.json``); ``repro bench`` runs it from
the CLI, and ``benchmarks/report.py`` remains as a thin path-invocable
shim for existing workflows.
"""

__all__ = ["report"]
