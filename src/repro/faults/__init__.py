"""Fault injection: declarative fault plans, the engine-agnostic
injector, in-trial checkpoints, and fault-record rendering.

See DESIGN.md Section 10 for the fault model and the
exchangeability-based engine degradation argument.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CHECKPOINT_SECS_ENV,
    DEFAULT_CHECKPOINT_DIR,
    TrialCheckpointer,
    checkpoint_engines,
    make_checkpointer,
)
from repro.faults.injector import FaultInjector, faults_json
from repro.faults.plan import (
    EVENT_KINDS,
    FaultEvent,
    FaultPlan,
    resolve_engine,
)
from repro.faults.report import render_faults

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_SECS_ENV",
    "DEFAULT_CHECKPOINT_DIR",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "TrialCheckpointer",
    "checkpoint_engines",
    "faults_json",
    "make_checkpointer",
    "render_faults",
    "resolve_engine",
]
