"""Rendering for stored fault records (``repro telemetry faults``)."""

from __future__ import annotations

import json

__all__ = ["render_faults"]


def render_faults(faults_json: str, n: int) -> str:
    """Plain-text recovery report for one trial's ``faults`` column.

    One row per applied fault event: kind, fault step, affected-agent
    count, and the measured recovery (interactions and parallel time,
    or ``not recovered`` for faults the trial never came back from).
    """
    data = json.loads(faults_json)
    events = data.get("events", [])
    recovered = sum(
        1 for event in events if event.get("recovery_steps") is not None
    )
    lines = [f"n={n:,}  events={len(events)}  recovered {recovered}/{len(events)}"]
    degraded = data.get("degraded_from")
    if degraded:
        lines.append(f"  engine degraded from {degraded} (per-agent plan)")
    for event in events:
        label = f"{event['kind']:>9s} @step {event['step']:,}"
        detail = f"k={event['count']}"
        if event.get("duration") is not None:
            detail += f" dur={event['duration']:,}"
        recovery = event.get("recovery_steps")
        if recovery is None:
            tail = "not recovered"
        else:
            tail = (
                f"recovery {recovery:,} steps "
                f"({recovery / n:.2f} parallel time)"
            )
        lines.append(f"  {label}  {detail:<12s} {tail}")
    return "\n".join(lines)
