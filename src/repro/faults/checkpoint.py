"""In-trial checkpoints: resume a killed multi-minute trial mid-run.

Campaign resume has always been per-trial (the store is the ledger); at
production scale a single superbatch trial is minutes of work, so a kill
mid-trial used to lose the whole trial.  A :class:`TrialCheckpointer`
closes that gap for the count-level engines: attached to a simulator, it
serializes the full chain state — count vector, interner contents, RNG
generator state, engine stats, phase series, and (for faulted trials)
the injector's progress — at block boundaries, wall-clock throttled, so
a ``kill -9`` resumes from the last checkpoint *bit-identically* to the
uninterrupted run (the generator state is part of the payload).

Everything is opt-in behind ``REPRO_CHECKPOINT_SECS``; without it no
checkpointer is constructed and the engines' block loops pay a single
``is None`` attribute check.  Files are keyed by spec content hash under
``REPRO_CHECKPOINT_DIR`` (default ``.repro-checkpoints/``), written
atomically (tmp + rename), and deleted when the trial completes, so a
checkpoint can never outlive — or alias — the trial it belongs to.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "CHECKPOINT_SECS_ENV",
    "CHECKPOINT_VERSION",
    "DEFAULT_CHECKPOINT_DIR",
    "TrialCheckpointer",
    "checkpoint_dir",
    "checkpoint_engines",
    "make_checkpointer",
    "sweep_orphans",
]

#: Seconds between checkpoint writes; unset/empty disables checkpointing.
CHECKPOINT_SECS_ENV = "REPRO_CHECKPOINT_SECS"
#: Directory checkpoint files live in (created on first write).
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"
DEFAULT_CHECKPOINT_DIR = ".repro-checkpoints"

CHECKPOINT_VERSION = 1

#: Engines that implement ``checkpoint_state``/``restore_state``.  The
#: block engines are the ones whose trials run long enough to matter and
#: whose state (a count vector plus one generator) snapshots cheaply at
#: block boundaries; the per-interaction engines carry buffered draw
#: cursors mid-stream and stay out of scope.
def checkpoint_engines() -> tuple[str, ...]:
    return ("batch", "superbatch")


class TrialCheckpointer:
    """Periodic, atomic snapshots of one trial keyed by its spec hash."""

    def __init__(self, path: str | Path, interval_secs: float) -> None:
        self.path = Path(path)
        self.interval_secs = max(0.0, interval_secs)
        #: Set by the measurement layer for faulted trials so the
        #: snapshot carries the injector's applied-event cursor too.
        self.injector = None
        self.saves = 0
        self._last_save = time.monotonic()

    # ------------------------------------------------------------------
    # writes (called from engine block loops)
    # ------------------------------------------------------------------

    def maybe_save(self, sim) -> None:
        """Save when the wall-clock interval elapsed (engine poll site).

        Wall-clock gating never touches the chain: a save *reads* the
        simulator state between blocks, so trajectories are identical
        with checkpointing on, off, or interrupted — the same neutrality
        argument as the telemetry heartbeats.
        """
        now = time.monotonic()
        if now - self._last_save < self.interval_secs:
            return
        self.save(sim)
        self._last_save = now

    def save(self, sim) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "engine": sim.ENGINE_NAME,
            "sim": sim.checkpoint_state(),
            "injector": (
                None if self.injector is None else self.injector.state_dict()
            ),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.saves += 1

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------

    def load(self) -> dict | None:
        """The last snapshot, or ``None`` (missing/corrupt/stale files
        are discarded rather than trusted)."""
        try:
            with open(self.path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.clear()
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CHECKPOINT_VERSION
        ):
            self.clear()
            return None
        return payload

    def restore(self, sim, injector=None) -> bool:
        """Restore ``sim`` (and the injector) from disk; True on resume."""
        payload = self.load()
        if payload is None or payload["engine"] != sim.ENGINE_NAME:
            return False
        sim.restore_state(payload["sim"])
        if injector is not None and payload["injector"] is not None:
            injector.load_state(payload["injector"])
        return True

    def clear(self) -> None:
        """Delete the snapshot (trial completed, or file rejected)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def checkpoint_dir() -> Path:
    """The active checkpoint directory (env override or the default)."""
    return Path(
        os.environ.get(CHECKPOINT_DIR_ENV) or DEFAULT_CHECKPOINT_DIR
    )


def sweep_orphans(
    completed_hashes: set[str], directory: str | Path | None = None
) -> list[Path]:
    """Delete checkpoint files whose trial already completed.

    A worker killed *between* a trial's final store write and the
    checkpointer's ``clear()`` leaves an orphan ``<hash>.ckpt`` behind —
    harmless (a re-run would just resume and immediately finish) but
    unbounded garbage across a long campaign.  ``repro store gc`` calls
    this with the store's completed set; files keyed by an in-flight
    hash survive, so sweeping is safe while workers run.  Stray
    ``*.tmp`` droppings from interrupted atomic writes are always
    swept.  Returns the deleted paths.
    """
    root = checkpoint_dir() if directory is None else Path(directory)
    if not root.is_dir():
        return []
    removed: list[Path] = []
    for path in sorted(root.iterdir()):
        orphaned = (
            path.suffixes and path.suffixes[-1] == ".tmp"
        ) or (
            path.suffix == ".ckpt" and path.stem in completed_hashes
        )
        if not orphaned:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        removed.append(path)
    return removed


def make_checkpointer(spec) -> TrialCheckpointer | None:
    """The env-gated checkpointer for one trial spec, or ``None``.

    ``None`` whenever ``REPRO_CHECKPOINT_SECS`` is unset/invalid or the
    spec's engine does not snapshot — the zero-overhead default.
    """
    raw = os.environ.get(CHECKPOINT_SECS_ENV)
    if not raw:
        return None
    try:
        interval = float(raw)
    except ValueError:
        return None
    if interval < 0 or spec.engine not in checkpoint_engines():
        return None
    path = checkpoint_dir() / f"{spec.content_hash()}.ckpt"
    return TrialCheckpointer(path, interval)
