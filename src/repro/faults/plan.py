"""Declarative fault plans: hash-stable descriptions of mid-run faults.

A :class:`FaultPlan` is part of a trial's *identity*: it attaches to
:class:`~repro.orchestration.spec.TrialSpec` and is content-hashed with
everything else, so a faulted trial caches, resumes, and shares store
rows exactly like a clean one.  ``plan=None`` (the default everywhere)
contributes nothing to the canonical form, keeping every pre-existing
spec hash and store row byte-identical.

Three event kinds cover the adversarial regimes the paper's Lemmas 9/10
promise recovery from:

* ``corrupt`` — transient state corruption: at step ``at_step``,
  ``count`` agents are re-assigned states drawn uniformly from the
  states *currently present* (an adversarial-but-reachable scramble).
  Uniformly-chosen victims are **exchangeable** — the fault is a pure
  function of the count vector, so every engine (including the
  count-level batch/superbatch pair) applies it without materializing
  agents.  An explicit ``agents`` tuple targets identified victims and
  is non-exchangeable.
* ``churn`` — crash/join: ``count`` uniformly-chosen agents leave and
  the same number of fresh agents (protocol initial state) join, so the
  population size is conserved.  Exchangeable for the same reason.
* ``partition`` — scheduler perturbation: only agents ``0..count-1``
  interact for ``duration`` steps (the
  :class:`~repro.engine.scheduler.RestrictedScheduler`), then the
  uniform scheduler takes over again — the generalization of E13's
  partition-then-heal.  Restricted interaction graphs need agent
  identity, so partitions are always non-exchangeable.

Exchangeability drives engine selection (see :func:`resolve_engine`):
exchangeable plans run on whatever engine the population size would get
anyway; non-exchangeable plans degrade to the per-agent engine, and the
degradation is recorded in the trial's stored fault record so ``auto``
stays deterministic and auditable.

Fault randomness never touches the engine's generator: each event draws
from its own ``default_rng([seed, FAULT_STREAM, event_index])`` stream,
so the faulted chain differs from the clean one *only* through the
configuration change itself — the property the cross-engine KS tests
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ExperimentError

__all__ = [
    "EVENT_KINDS",
    "FAULT_STREAM",
    "FaultEvent",
    "FaultPlan",
    "resolve_engine",
]

#: Spawn-key namespace separating fault draws from every engine stream.
FAULT_STREAM = 0xFA17

#: The fault kinds a plan may contain.
EVENT_KINDS = ("corrupt", "churn", "partition")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at_step`` is the absolute interaction index the fault fires at —
    the run is driven to exactly that step (every engine executes exact
    step budgets) before the event applies.  ``count`` is the number of
    affected agents (clique size for partitions).  ``agents`` targets
    explicit victims for ``corrupt`` (non-exchangeable); ``duration`` is
    the partition's length in steps.
    """

    kind: str
    at_step: int
    count: int = 0
    agents: tuple[int, ...] | None = None
    duration: int | None = None

    def validate(self, index: int) -> None:
        if self.kind not in EVENT_KINDS:
            raise ExperimentError(
                f"fault event #{index} has unknown kind {self.kind!r}; "
                f"use one of: {', '.join(EVENT_KINDS)}"
            )
        if self.at_step < 0:
            raise ExperimentError(
                f"fault event #{index} fires at negative step {self.at_step}"
            )
        if self.agents is not None:
            if self.kind != "corrupt":
                raise ExperimentError(
                    f"fault event #{index}: explicit agents are only "
                    f"meaningful for 'corrupt', not {self.kind!r}"
                )
            if not self.agents:
                raise ExperimentError(
                    f"fault event #{index} targets an empty agent tuple"
                )
            if len(set(self.agents)) != len(self.agents):
                raise ExperimentError(
                    f"fault event #{index} targets duplicate agents"
                )
        elif self.count < 1:
            raise ExperimentError(
                f"fault event #{index} affects {self.count} agents; "
                "need at least 1"
            )
        if self.kind == "partition":
            if self.duration is None or self.duration < 1:
                raise ExperimentError(
                    f"fault event #{index}: a partition needs a positive "
                    f"duration, got {self.duration}"
                )
            if self.count < 2:
                raise ExperimentError(
                    f"fault event #{index}: a partition clique needs at "
                    f"least 2 members, got {self.count}"
                )
        elif self.duration is not None:
            raise ExperimentError(
                f"fault event #{index}: duration is only meaningful for "
                f"'partition', not {self.kind!r}"
            )

    @property
    def exchangeable(self) -> bool:
        """Whether the event is a pure function of the count vector."""
        return self.agents is None and self.kind != "partition"

    @property
    def end_step(self) -> int:
        """First step after the event has fully applied (heal step for
        partitions, ``at_step`` for instantaneous faults)."""
        if self.kind == "partition":
            return self.at_step + (self.duration or 0)
        return self.at_step

    def canonical(self) -> dict[str, object]:
        """JSON-ready form with absent optionals omitted (hash-stable)."""
        payload: dict[str, object] = {
            "kind": self.kind,
            "at_step": self.at_step,
        }
        if self.agents is not None:
            payload["agents"] = list(self.agents)
        else:
            payload["count"] = self.count
        if self.duration is not None:
            payload["duration"] = self.duration
        return payload

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "FaultEvent":
        known = {"kind", "at_step", "count", "agents", "duration"}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"fault event has unknown fields: {', '.join(sorted(unknown))}"
            )
        agents = data.get("agents")
        return cls(
            kind=str(data.get("kind", "")),
            at_step=int(data.get("at_step", -1)),
            count=int(data.get("count", 0) or 0),
            agents=None if agents is None else tuple(int(a) for a in agents),
            duration=(
                None if data.get("duration") is None else int(data["duration"])
            ),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of fault events for one trial.

    Events must fire at strictly increasing steps; a partition's healed
    interval may not overlap the next event (the driver applies events
    one at a time at exact steps).  Frozen and tuple-backed so plans are
    hashable — :class:`TrialSpec` carries them directly.
    """

    events: tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise ExperimentError("a fault plan needs at least one event")
        previous_end = -1
        for index, event in enumerate(self.events):
            event.validate(index)
            if event.at_step <= previous_end:
                raise ExperimentError(
                    f"fault event #{index} fires at step {event.at_step}, "
                    "not after the previous event finished "
                    f"(step {previous_end})"
                )
            previous_end = event.end_step

    def __len__(self) -> int:
        return len(self.events)

    @property
    def exchangeable(self) -> bool:
        """Whether every event applies on the count vector alone."""
        return all(event.exchangeable for event in self.events)

    def validate_against(self, n: int, max_steps: int | None) -> None:
        """Check the plan fits population size and step budget."""
        for index, event in enumerate(self.events):
            affected = (
                len(event.agents) if event.agents is not None else event.count
            )
            if affected > n:
                raise ExperimentError(
                    f"fault event #{index} affects {affected} agents in a "
                    f"population of n={n}"
                )
            if event.agents is not None and max(event.agents) >= n:
                raise ExperimentError(
                    f"fault event #{index} targets agent "
                    f"{max(event.agents)} outside 0..{n - 1}"
                )
            if max_steps is not None and event.end_step >= max_steps:
                raise ExperimentError(
                    f"fault event #{index} finishes at step "
                    f"{event.end_step}, beyond the max_steps budget "
                    f"{max_steps}"
                )

    def canonical(self) -> list[dict[str, object]]:
        """The hashed identity of the plan, as a JSON-ready list."""
        return [event.canonical() for event in self.events]

    @classmethod
    def create(
        cls,
        events: Sequence[Mapping[str, object] | FaultEvent],
    ) -> "FaultPlan":
        """Build and validate a plan from events or their mappings."""
        built = tuple(
            event
            if isinstance(event, FaultEvent)
            else FaultEvent.from_mapping(event)
            for event in events
        )
        return cls(events=built)

    @classmethod
    def coerce(
        cls,
        plan: "FaultPlan | Sequence | None",
    ) -> "FaultPlan | None":
        """Normalize the spec-facing argument: plan, event list, or None."""
        if plan is None or isinstance(plan, FaultPlan):
            return plan
        return cls.create(plan)


def resolve_engine(plan: FaultPlan | None, engine: str) -> str:
    """The engine a faulted spec must actually run on.

    Exchangeable plans (and ``plan=None``) keep whatever engine the
    population size resolved to — uniform corruption and churn apply
    directly on count vectors, so superbatch/batch scale survives.
    Non-exchangeable plans (targeted agents, restricted interaction
    graphs) need per-agent identity and degrade to the ``agent``
    engine.  Explicitly requesting a count-level engine for a
    non-exchangeable plan is an error rather than a silent downgrade —
    :func:`~repro.orchestration.spec.trial_specs` applies this to
    ``auto``-resolved engines, where degradation is the documented
    contract.
    """
    if plan is None or plan.exchangeable:
        return engine
    return "agent"
