"""Fault execution: drive any engine through a plan's fault schedule.

The :class:`FaultInjector` owns the faulted-run loop.  It exploits the
one execution property every engine already guarantees — ``run(k)``
executes *exactly* ``k`` interactions and ``run_until_stabilized``
treats ``max_steps`` as an exact budget (raising
:class:`~repro.errors.ConvergenceError` with ``sim.steps`` right at the
boundary) — so fault timing needs no engine-loop surgery: the run is
segmented at each event's ``at_step``, and within a segment the engine's
own exact first-hit stabilization detection keeps recovery times precise
to the interaction on every engine, which is what makes recovery-time
distributions KS-comparable across superbatch, batch and multiset.

Per segment the driver re-arms convergence detection: it runs
``run_until_stabilized`` capped at the next fault step; a stabilization
inside the segment settles the recovery time of every fault still
pending, and the remainder of the segment (stable, so nothing more to
detect) advances with a plain ``run``.  A budget exhaustion in the
*final* segment is the trial's failure — exactly like a clean trial —
and flows into the campaign fabric's retry/quarantine path.

Event application is two-pathed by exchangeability:

* count-level (`state_counts`/`load_counts` engines — multiset, batch,
  superbatch): uniformly-chosen victims are a multivariate
  hypergeometric draw on the count vector, and corrupt replacements are
  uniform over the states present.  No agent identities materialize, so
  superbatch scale survives faulted runs.
* per-agent (:class:`~repro.engine.simulator.AgentSimulator`): the same
  distributions realized on identified agents, plus the two
  non-exchangeable events (targeted corruption, partitions via
  :class:`~repro.engine.scheduler.RestrictedScheduler`).

Fault randomness comes from a dedicated per-event stream
(``default_rng([seed, FAULT_STREAM, event_index])``), never the
engine's generator, so the faulted chain deviates from the clean one
only through the configuration change itself.

The injector is checkpointable: :meth:`state_dict`/:meth:`load_state`
round-trip the applied-event records and cursor, and :meth:`drive`
derives everything else from ``sim.steps``, so a killed faulted trial
resumes mid-plan from an engine checkpoint.
"""

from __future__ import annotations

import json
from typing import Counter as CounterType

import numpy as np

from repro.engine.convergence import MonotoneLeaderStabilization
from repro.engine.scheduler import RandomScheduler, RestrictedScheduler
from repro.errors import ConvergenceError, SimulationError
from repro.faults.plan import FAULT_STREAM, FaultEvent, FaultPlan

__all__ = ["FaultInjector", "faults_json"]

FAULTS_VERSION = 1


def _support(counts: CounterType) -> list:
    """The states currently present, in a canonical engine-free order.

    Interned ids are an engine-path artifact (kernel vs cached interning
    order differs), so cross-engine determinism sorts the decoded states
    by their repr — stable for the frozen dataclass/tuple states every
    protocol here uses.
    """
    return sorted((state for state, count in counts.items() if count > 0), key=repr)


class FaultInjector:
    """Drive one simulator through one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, n: int, seed: int | None) -> None:
        self.plan = plan
        self.n = n
        self.seed = 0 if seed is None else int(seed)
        #: Applied-event records: plain dicts so they pickle into
        #: checkpoints and serialize into the store's ``faults`` column.
        self.records: list[dict] = []
        self._next_event = 0

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "next_event": self._next_event,
            "records": [dict(record) for record in self.records],
        }

    def load_state(self, payload: dict) -> None:
        self._next_event = int(payload["next_event"])
        self.records = [dict(record) for record in payload["records"]]

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------

    def _event_rng(self, index: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, FAULT_STREAM, index])

    def _apply_counts(self, sim, event: FaultEvent, rng) -> None:
        """Exchangeable events on the count vector (any count engine)."""
        counts = sim.state_counts()
        support = _support(counts)
        vector = np.array([counts[state] for state in support], dtype=np.int64)
        victims = rng.multivariate_hypergeometric(vector, event.count)
        if event.kind == "corrupt":
            replacements = np.bincount(
                rng.integers(0, len(support), size=event.count),
                minlength=len(support),
            )
        else:  # churn: leavers are replaced by fresh initial-state agents
            initial = sim.protocol.initial_state()
            try:
                initial_slot = support.index(initial)
            except ValueError:
                support.append(initial)
                victims = np.append(victims, 0)
                initial_slot = len(support) - 1
            replacements = np.zeros(len(support), dtype=np.int64)
            replacements[initial_slot] = event.count
        updated = {
            state: int(counts[state]) - int(gone) + int(back)
            for state, gone, back in zip(support, victims, replacements)
        }
        sim.load_counts({s: c for s, c in updated.items() if c})

    def _apply_agents(self, sim, event: FaultEvent, rng) -> None:
        """The same event distributions realized on identified agents."""
        configuration = sim.configuration()
        if event.kind == "partition":
            raise AssertionError("partitions apply via _apply_partition")
        if event.agents is not None:
            victims = list(event.agents)
        else:
            victims = rng.choice(self.n, size=event.count, replace=False).tolist()
        if event.kind == "corrupt":
            support = _support(sim.state_counts())
            picks = rng.integers(0, len(support), size=len(victims))
            for victim, pick in zip(victims, picks):
                configuration[victim] = support[int(pick)]
        else:  # churn
            fresh = sim.protocol.initial_state()
            for victim in victims:
                configuration[victim] = fresh
        sim.load_configuration(configuration)

    def _apply_partition(self, sim, event: FaultEvent, rng) -> None:
        """Restrict interactions to the clique, run it out, then heal."""
        if not hasattr(sim, "set_scheduler"):
            raise SimulationError(
                "partition faults need the per-agent engine (scheduler "
                f"support); got {type(sim).__name__}"
            )
        partition_seed = int(rng.integers(0, 2**63))
        heal_seed = int(rng.integers(0, 2**63))
        sim.set_scheduler(
            RestrictedScheduler(self.n, range(event.count), seed=partition_seed)
        )
        sim.run(event.duration)
        sim.set_scheduler(RandomScheduler(self.n, seed=heal_seed))

    def _apply(self, sim, event: FaultEvent, index: int) -> None:
        rng = self._event_rng(index)
        record = {
            "kind": event.kind,
            "step": int(sim.steps),
            "count": (
                len(event.agents) if event.agents is not None else event.count
            ),
            "exchangeable": event.exchangeable,
        }
        if event.kind == "partition":
            self._apply_partition(sim, event, rng)
            record["duration"] = event.duration
        elif hasattr(sim, "load_counts") and event.exchangeable:
            self._apply_counts(sim, event, rng)
        else:
            self._apply_agents(sim, event, rng)
        # Recovery is armed when the population can start recovering:
        # the heal step for partitions, the fault step otherwise.
        record["armed_step"] = int(sim.steps)
        record["recovery_steps"] = None
        self.records.append(record)

    # ------------------------------------------------------------------
    # the segment driver
    # ------------------------------------------------------------------

    def _settle(self, step: int) -> None:
        """Record recovery times for every fault still pending at a
        stabilization observed at ``step``."""
        for record in self.records:
            if record["recovery_steps"] is None:
                record["recovery_steps"] = step - record["armed_step"]

    def _run_segment(
        self, sim, until_step: int, detector, final: bool
    ) -> None:
        """Advance to exactly ``until_step``, detecting stabilization.

        Re-armed detection runs first; once the segment stabilizes (or
        arrives already stable), pending recoveries settle and the
        stable remainder advances without detection.  A non-final
        budget exhaustion just means the fault fires before recovery —
        the engines' exact budgets leave ``sim.steps == until_step``.
        A final-segment exhaustion propagates as the trial's failure.
        """
        if not detector.check(sim):
            try:
                sim.run_until_stabilized(max_steps=until_step - sim.steps)
            except ConvergenceError:
                if final:
                    raise
                return
        self._settle(sim.steps)
        remaining = until_step - sim.steps
        if remaining > 0 and not final:
            sim.run(remaining)

    def drive(self, sim, max_steps: int | None = None) -> int:
        """Run ``sim`` through the plan; return steps at final stabilization.

        Resumable: everything is derived from ``sim.steps`` and the
        restored cursor, so a checkpoint-restored simulator continues
        mid-plan without replaying applied events.
        """
        n = sim.n
        if max_steps is None:
            max_steps = 5000 * n * max(1, n.bit_length())
        self.plan.validate_against(n, max_steps)
        detector = MonotoneLeaderStabilization()
        events = self.plan.events
        while self._next_event < len(events):
            event = events[self._next_event]
            if sim.steps < event.at_step:
                self._run_segment(sim, event.at_step, detector, final=False)
            self._apply(sim, event, self._next_event)
            self._next_event += 1
        self._run_segment(sim, max_steps, detector, final=True)
        if not detector.check(sim):  # pragma: no cover - defensive
            raise ConvergenceError(
                f"faulted run did not stabilize within {max_steps} steps",
                steps=sim.steps,
            )
        return sim.steps

    # ------------------------------------------------------------------
    # the stored fault record
    # ------------------------------------------------------------------

    def to_json(self, degraded_from: str | None = None) -> str:
        """Canonical JSON for the store's ``faults`` column.

        Deterministic by construction (steps and counts only, no wall
        clock), so store rows stay byte-comparable across runs and
        telemetry switches.
        """
        return faults_json(self.plan, self.records, self.n, degraded_from)


def faults_json(
    plan: FaultPlan,
    records: list[dict],
    n: int,
    degraded_from: str | None = None,
) -> str:
    events = []
    for record in records:
        recovery = record["recovery_steps"]
        event: dict[str, object] = {
            "kind": record["kind"],
            "step": record["step"],
            "count": record["count"],
            "exchangeable": record["exchangeable"],
            "recovery_steps": recovery,
            "recovery_parallel_time": (
                None if recovery is None else recovery / n
            ),
        }
        if "duration" in record:
            event["duration"] = record["duration"]
        events.append(event)
    payload: dict[str, object] = {
        "version": FAULTS_VERSION,
        "plan": plan.canonical(),
        "events": events,
    }
    if degraded_from is not None:
        payload["degraded_from"] = degraded_from
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
