"""State-weighted schedules on every engine, by thinning the uniform one.

The ``weighted`` family selects ordered pair ``(u, v)`` with probability
proportional to ``w(u) * w(v)``, where ``w`` maps an agent's *output
symbol* to a positive weight (unlisted symbols weigh 1.0).  Every
implementation here realizes that distribution the same way: propose
pairs from the uniform scheduler and accept a proposal with probability

    a(u, v) = w(u) * w(v) / wmax^2

Rejected proposals consume randomness but are *not* chain steps — the
accepted subsequence is the weighted chain, so ``steps`` (and therefore
parallel time and every stabilization measurement) counts accepted
interactions only.

Why thinning keeps the count-level engines exact: acceptance depends only
on the proposed pair's own states, never on agent identity or on a global
normalizer.  Within a batch block (cut at the first birthday collision)
or a super-batch collision-free run, all drawn agents are distinct, so
every proposal's pre-states — for the accept decision *and* for the
transition — come from the block-start counts exactly as the uniform
engines already sample them.  Thinning such a block is therefore a
per-proposal Bernoulli filter (a Binomial per realized pair type on the
super-batch COO multiset), and the accepted sub-multiset inherits the
run's exchangeability, so leader-target truncation via hypergeometric
prefix splits applies unchanged.  See DESIGN.md Section 11.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.engine.batch.sampling import (
    draw_interaction_pairs,
    first_collision,
    sample_block_states,
)
from repro.engine.batch.simulator import BatchSimulator
from repro.engine.multiset import MultisetSimulator
from repro.engine.scheduler import RandomScheduler
from repro.engine.superbatch.sampling import sample_run_length, sample_run_pairs
from repro.engine.superbatch.simulator import SuperBatchSimulator
from repro.errors import ScheduleError

__all__ = [
    "StateWeightedScheduler",
    "WeightedMultisetSimulator",
    "WeightedBatchSimulator",
    "WeightedSuperBatchSimulator",
]


def _normalize_weights(weights: Mapping[str, float]) -> dict[str, float]:
    if not weights:
        raise ScheduleError("weighted schedule needs a non-empty weight map")
    normalized = {str(k): float(v) for k, v in weights.items()}
    if any(v <= 0.0 or not np.isfinite(v) for v in normalized.values()):
        raise ScheduleError(f"weights must be positive and finite: {weights}")
    return normalized


class StateWeightedScheduler:
    """Per-agent path: rejection sampling against the live simulator.

    Wraps a :class:`~repro.engine.scheduler.RandomScheduler` and reads
    the simulator's current per-agent states to accept or reject each
    uniform proposal; ``next_pair`` returns accepted pairs only.  The
    simulator must be the one the scheduler was built for — attach with
    :meth:`~repro.engine.simulator.AgentSimulator.set_scheduler`.
    """

    def __init__(
        self,
        sim,
        weights: Mapping[str, float],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._sim = sim
        self._inner = RandomScheduler(sim.n, seed)
        self._weight_of_symbol = _normalize_weights(weights)
        wmax = max(1.0, max(self._weight_of_symbol.values()))
        self._inv_wmax2 = 1.0 / (wmax * wmax)
        self._weight_of_id: list[float] = []

    @property
    def rng(self) -> np.random.Generator:
        """The proposal stream's generator (shared when passed in)."""
        return self._inner.rng

    def _weight_for(self, sid: int) -> float:
        table = self._weight_of_id
        if sid >= len(table):
            weight_of = self._weight_of_symbol
            output_for = self._sim._output_for
            for missing in range(len(table), len(self._sim.interner)):
                table.append(weight_of.get(output_for(missing), 1.0))
        return table[sid]

    def next_pair(self) -> tuple[int, int]:
        states = self._sim.states
        inner = self._inner
        rng = inner.rng
        inv_wmax2 = self._inv_wmax2
        while True:
            u, v = inner.next_pair()
            accept = (
                self._weight_for(states[u])
                * self._weight_for(states[v])
                * inv_wmax2
            )
            if accept >= 1.0 or rng.random() < accept:
                return u, v

    def pairs(self, count: int):
        """Yield ``count`` accepted pairs (testing convenience)."""
        for _ in range(count):
            yield self.next_pair()


class WeightedMultisetSimulator(MultisetSimulator):
    """Fenwick-sampled engine with per-step proposal thinning."""

    def __init__(
        self,
        protocol,
        n: int,
        weights: Mapping[str, float],
        seed: int | None = None,
        **kwargs,
    ) -> None:
        self._weight_of_symbol = _normalize_weights(weights)
        wmax = max(1.0, max(self._weight_of_symbol.values()))
        self._inv_wmax2 = 1.0 / (wmax * wmax)
        self._weight_of_id: list[float] = []
        super().__init__(protocol, n, seed=seed, **kwargs)

    def _weight_for(self, sid: int) -> float:
        table = self._weight_of_id
        if sid >= len(table):
            weight_of = self._weight_of_symbol
            for missing in range(len(table), len(self.interner)):
                table.append(weight_of.get(self._output_for(missing), 1.0))
        return table[sid]

    def step(self) -> tuple[int, int, int, int]:
        """One *accepted* interaction; proposals are thinned in place."""
        fenwick = self._fenwick
        rng = self._rng
        inv_wmax2 = self._inv_wmax2
        while True:
            cursor = self._cursor
            if cursor >= len(self._first_draws):
                self._refill_draws()
                cursor = 0
            self._cursor = cursor + 1
            pre0 = fenwick.find(self._first_draws[cursor])
            fenwick.add(pre0, -1)
            pre1 = fenwick.find(self._second_draws[cursor])
            accept = (
                self._weight_for(pre0) * self._weight_for(pre1) * inv_wmax2
            )
            if accept >= 1.0 or rng.random() < accept:
                break
            fenwick.add(pre0, 1)  # rejected proposal: not a chain step
        post0, post1 = self.cache.apply(pre0, pre1)
        self.steps += 1
        if post0 == pre0 and post1 == pre1:
            self.null_steps += 1
            fenwick.add(pre0, 1)
            return pre0, pre1, post0, post1
        fenwick.add(pre1, -1)
        fenwick.add(post0, 1)
        fenwick.add(post1, 1)
        counts = self._counts
        for sid in (pre0, pre1):
            remaining = counts[sid] - 1
            if remaining:
                counts[sid] = remaining
            else:
                del counts[sid]
        counts[post0] = counts.get(post0, 0) + 1
        counts[post1] = counts.get(post1, 0) + 1
        output_counts = self.output_counts
        output_for = self._output_for
        for pre in (pre0, pre1):
            symbol = output_for(pre)
            remaining = output_counts[symbol] - 1
            if remaining:
                output_counts[symbol] = remaining
            else:
                del output_counts[symbol]
        output_counts[output_for(post0)] += 1
        output_counts[output_for(post1)] += 1
        return pre0, pre1, post0, post1

    def telemetry_summary(self) -> dict:
        summary = super().telemetry_summary()
        summary["scheduler"] = "weighted"
        return summary


class _WeightedCountsMixin:
    """Weight table plus the weighted geometric null path, shared by the
    block engines (batch and super-batch)."""

    def _init_weights(self, weights: Mapping[str, float]) -> None:
        """Call *before* ``super().__init__`` — ``_ensure_tables`` runs
        during base construction and needs the symbol map in place."""
        self._weight_of_symbol = _normalize_weights(weights)
        wmax = max(1.0, max(self._weight_of_symbol.values()))
        self._inv_wmax2 = 1.0 / (wmax * wmax)
        self._weight_of_id = np.ones(16, dtype=np.float64)
        self._weights_known = 0

    def _ensure_tables(self) -> None:
        super()._ensure_tables()
        known = len(self._output_of_id)
        table = self._weight_of_id
        if table.shape[0] < known:
            grown = np.ones(
                max(self._counts.shape[0], known), dtype=np.float64
            )
            grown[: table.shape[0]] = table
            self._weight_of_id = table = grown
        if self._weights_known < known:
            weight_of = self._weight_of_symbol
            outputs = self._output_of_id
            for sid in range(self._weights_known, known):
                table[sid] = weight_of.get(outputs[sid], 1.0)
            self._weights_known = known

    def _null_skip(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool] | None:
        """Weighted-chain analogue of the geometric null fast path.

        A chain step's ordered state pair ``(s, t)`` has probability
        ``c_s w_s (c_t - [s=t]) w_t / Z`` with ``Z = W^2 - sum c_s
        w_s^2`` and ``W = sum c_s w_s`` (thinning's stationary pair
        law), so steps-to-next-non-null is Geometric in the active
        weighted mass over ``Z`` and the non-null pair is a weighted
        ticket draw — same structure as the uniform path, with float
        masses.
        """
        known = len(self.interner)
        counts = self._counts[:known]
        present = np.nonzero(counts)[0]
        if present.shape[0] > self._null_scan_limit:
            return None
        pairs0 = np.repeat(present, present.shape[0])
        pairs1 = np.tile(present, present.shape[0])
        eligible = (pairs0 != pairs1) | (counts[pairs0] >= 2)
        pairs0, pairs1 = pairs0[eligible], pairs1[eligible]
        post0s, post1s = self.cache.apply_block(pairs0, pairs1)
        self._ensure_tables()
        active = (post0s != pairs0) | (post1s != pairs1)
        if not active.any():
            self.steps += budget
            self.stats.null_skipped_steps += budget
            return budget, False
        weight_table = self._weight_of_id
        mass = counts.astype(np.float64) * weight_table[:known]
        total_mass = float(mass.sum())
        normalizer = total_mass * total_mass - float(
            (mass * weight_table[:known]).sum()
        )
        active0 = pairs0[active]
        active1 = pairs1[active]
        weights = mass[active0] * mass[active1]
        same = active0 == active1
        weights[same] = mass[active0[same]] * (
            mass[active0[same]] - weight_table[active0[same]]
        )
        active_weight = float(weights.sum())
        probability = active_weight / normalizer
        if probability > self._NULL_EXIT:
            return None
        skip = int(self._rng.geometric(probability))
        if skip > budget:
            self.steps += budget
            self.stats.null_skipped_steps += budget
            return budget, False
        cumulative = np.cumsum(weights)
        ticket = float(self._rng.random()) * active_weight
        chosen = min(
            int(np.searchsorted(cumulative, ticket, side="right")),
            weights.shape[0] - 1,
        )
        pre0 = int(active0[chosen])
        pre1 = int(active1[chosen])
        post0 = int(post0s[active][chosen])
        post1 = int(post1s[active][chosen])
        self.steps += skip
        self.stats.null_skipped_steps += skip - 1
        self.stats.null_events += 1
        self._commit(
            np.array([pre0]),
            np.array([pre1]),
            np.array([post0]),
            np.array([post1]),
        )
        reached = (
            leader_target is not None and self.leader_count == leader_target
        )
        return skip, reached

    def telemetry_summary(self) -> dict:
        summary = super().telemetry_summary()
        summary["scheduler"] = "weighted"
        return summary


class WeightedBatchSimulator(_WeightedCountsMixin, BatchSimulator):
    """Birthday-block engine with vectorized per-proposal thinning."""

    ENGINE_NAME = "batch"

    def __init__(
        self,
        protocol,
        n: int,
        weights: Mapping[str, float],
        seed: int | None = None,
        **kwargs,
    ) -> None:
        self._init_weights(weights)
        super().__init__(protocol, n, seed=seed, **kwargs)

    def _advance_block(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool]:
        """One thinned birthday block of at most ``budget`` chain steps.

        The uniform prefix (every agent distinct) is proposed exactly as
        the base engine does; a vectorized Bernoulli filter keeps the
        accepted subsequence.  Budget and leader-target cuts act on
        accepted interactions, and the colliding proposal is itself
        accept/rejected against its participants' current states.
        """
        pairs = min(self._block_pairs, budget)
        profile = self._profile
        rng = self._rng
        with profile.stage("sample"):
            initiators, responders = draw_interaction_pairs(
                rng, self.n, pairs
            )
            free, collision_flat = first_collision(initiators, responders)
            states = sample_block_states(
                rng, self._counts[: len(self.interner)], 2 * free
            )
            pre0 = states[0::2]
            pre1 = states[1::2]
            weight_table = self._weight_of_id
            accept_p = (
                weight_table[pre0] * weight_table[pre1] * self._inv_wmax2
            )
            accept = accept_p >= 1.0
            undecided = ~accept
            if undecided.any():
                accept[undecided] = (
                    rng.random(int(undecided.sum())) < accept_p[undecided]
                )
            kept = np.nonzero(accept)[0]
            budget_cut = kept.shape[0] > budget
            if budget_cut:
                # Proposals after the budget-th accepted one never happen.
                kept = kept[:budget]
            block_pre0 = pre0[kept]
            block_pre1 = pre1[kept]
        with profile.stage("apply"):
            post0, post1 = self._apply_pairs(block_pre0, block_pre1)
        use = kept.shape[0]
        reached = False
        if leader_target is not None and use:
            with profile.stage("detect"):
                marks = self._leader_mark
                deltas = (
                    marks[post0]
                    + marks[post1]
                    - marks[block_pre0]
                    - marks[block_pre1]
                )
                if deltas.any():
                    cumulative = self.leader_count + np.cumsum(deltas)
                    hits = np.nonzero(cumulative == leader_target)[0]
                    if hits.size:
                        use = int(hits[0]) + 1
                        kept = kept[:use]
                        block_pre0, block_pre1 = (
                            block_pre0[:use],
                            block_pre1[:use],
                        )
                        post0, post1 = post0[:use], post1[:use]
                        reached = True
                        self.stats.truncated_blocks += 1
        with profile.stage("commit"):
            self._commit(block_pre0, block_pre1, post0, post1)
        self.steps += use
        self.stats.blocks += 1
        self.stats.block_steps += use
        active = int(
            np.count_nonzero((post0 != block_pre0) | (post1 != block_pre1))
        )
        if reached:
            return use, True
        applied = use
        if collision_flat >= 0 and not budget_cut and applied < budget:
            # Current state of every proposed agent: post for accepted
            # proposals, unchanged pre for rejected ones.
            effective0 = pre0.copy()
            effective1 = pre1.copy()
            effective0[kept] = post0
            effective1[kept] = post1
            with profile.stage("commit"):
                consumed, collision_active = self._thinned_collision_step(
                    int(initiators[free]),
                    int(responders[free]),
                    initiators[:free],
                    responders[:free],
                    effective0,
                    effective1,
                )
            applied += consumed
            active += collision_active
            if (
                consumed
                and leader_target is not None
                and self.leader_count == leader_target
            ):
                return applied, True
        if active == 0 and applied >= 16:
            self._null_mode = True
        return applied, False

    def _thinned_collision_step(
        self,
        initiator_agent: int,
        responder_agent: int,
        block_initiators: np.ndarray,
        block_responders: np.ndarray,
        effective0: np.ndarray,
        effective1: np.ndarray,
    ) -> tuple[int, int]:
        """Accept/reject and maybe apply the colliding proposal.

        Same pre-state resolution as the base engine's collision step —
        a touched agent carries its effective (possibly unchanged)
        block state, a fresh agent is drawn from the untouched
        remainder — followed by the thinning decision.  Returns
        ``(chain steps consumed, active interactions)``.
        """

        def touched_state(agent: int) -> int | None:
            hits = np.nonzero(block_initiators == agent)[0]
            if hits.size:
                return int(effective0[hits[0]])
            hits = np.nonzero(block_responders == agent)[0]
            if hits.size:
                return int(effective1[hits[0]])
            return None

        pre_initiator = touched_state(initiator_agent)
        pre_responder = touched_state(responder_agent)
        if pre_initiator is None or pre_responder is None:
            pool = self._counts.copy()
            size = pool.shape[0]
            pool -= np.bincount(effective0, minlength=size)
            pool -= np.bincount(effective1, minlength=size)
            if pre_initiator is None:
                pre_initiator = self._draw_one(pool)
                pool[pre_initiator] -= 1
            if pre_responder is None:
                pre_responder = self._draw_one(pool)
        weight_table = self._weight_of_id
        accept = (
            float(weight_table[pre_initiator] * weight_table[pre_responder])
            * self._inv_wmax2
        )
        if accept < 1.0 and float(self._rng.random()) >= accept:
            return 0, 0
        return 1, self._apply_single(pre_initiator, pre_responder)


class WeightedSuperBatchSimulator(_WeightedCountsMixin, SuperBatchSimulator):
    """Collision-free-run engine with Binomial thinning per pair type."""

    ENGINE_NAME = "superbatch"

    def __init__(
        self,
        protocol,
        n: int,
        weights: Mapping[str, float],
        seed: int | None = None,
        **kwargs,
    ) -> None:
        self._init_weights(weights)
        super().__init__(protocol, n, seed=seed, **kwargs)

    def _advance_block(
        self, budget: int, leader_target: int | None
    ) -> tuple[int, bool]:
        """One thinned collision-free run plus its thinned collision.

        Proposals within a run involve all-distinct agents, so each of a
        pair type's ``m`` occurrences accepts independently with the
        same probability: accepted counts are ``Binomial(m, a(s, t))``,
        drawn vectorized.  The accepted sub-multiset stays exchangeable,
        so the base engine's hypergeometric leader-target truncation
        applies verbatim; the *touched* multiset for collision replay is
        accepted post-states plus rejected (unchanged) pre-states — all
        ``2 * length`` drawn agents.
        """
        rng = self._rng
        limit = min(budget, self._run_cap)
        stats = self.stats
        profile = self._profile
        with profile.stage("sample"):
            length, collided = sample_run_length(
                rng, self.n, limit, stats=stats
            )
        active = 0
        applied = 0
        touched = None
        if length:
            counts = self._counts
            with profile.stage("sample"):
                support = np.nonzero(counts[: len(self.interner)])[0]
                pre0, pre1, weight = sample_run_pairs(
                    rng, support, counts[support], length, stats=stats
                )
                weight_table = self._weight_of_id
                accept_p = (
                    weight_table[pre0]
                    * weight_table[pre1]
                    * self._inv_wmax2
                )
                undecided = accept_p < 1.0
                if undecided.any():
                    # Binomial(m, 1) is deterministically m: only draw
                    # for the pair types whose acceptance can reject.
                    accepted = weight.copy()
                    accepted[undecided] = rng.binomial(
                        weight[undecided], accept_p[undecided]
                    )
                else:
                    accepted = weight
            if accepted is weight:
                run_pre0, run_pre1, run_weight = pre0, pre1, weight
            else:
                kept = accepted > 0
                run_pre0, run_pre1, run_weight = (
                    pre0[kept],
                    pre1[kept],
                    accepted[kept],
                )
            applied = int(run_weight.sum())
            touched_accepted = None
            if applied:
                with profile.stage("apply"):
                    post0, post1 = self.cache.apply_block(run_pre0, run_pre1)
                self._ensure_tables()
                marks = self._leader_mark
                deltas = (
                    marks[post0]
                    + marks[post1]
                    - marks[run_pre0]
                    - marks[run_pre1]
                )
                if leader_target is not None and deltas.any():
                    with profile.stage("detect"):
                        truncated = self._truncate_run(
                            run_weight, deltas, self._lead, leader_target
                        )
                    if truncated is not None:
                        prefix, steps = truncated
                        with profile.stage("commit"):
                            self._commit_weighted(
                                run_pre0, run_pre1, post0, post1, prefix
                            )
                        self.steps += steps
                        stats.blocks += 1
                        stats.block_steps += steps
                        stats.truncated_runs += 1
                        return steps, True
                with profile.stage("commit"):
                    touched_accepted = self._commit_weighted(
                        run_pre0, run_pre1, post0, post1, run_weight
                    )
                changed = (post0 != run_pre0) | (post1 != run_pre1)
                if changed.any():
                    active = int(run_weight[changed].sum())
            self.steps += applied
            stats.blocks += 1
            stats.block_steps += applied
            size = self._counts.shape[0]
            if accepted is weight:
                # Nothing rejected: the touched multiset is exactly the
                # accepted agents.
                touched = (
                    touched_accepted
                    if touched_accepted is not None
                    else np.zeros(size, dtype=np.int64)
                )
            else:
                rejected = (weight - accepted).astype(np.float64)
                touched = (
                    np.bincount(pre0, weights=rejected, minlength=size)
                    + np.bincount(pre1, weights=rejected, minlength=size)
                ).astype(np.int64)
                if touched_accepted is not None:
                    touched += touched_accepted
        if collided and applied < budget:
            with profile.stage("commit"):
                consumed, collision_active = self._thinned_replay_collision(
                    2 * length, touched
                )
            applied += consumed
            active += collision_active
            if (
                consumed
                and leader_target is not None
                and self.leader_count == leader_target
            ):
                return applied, True
        if active == 0 and applied >= 16:
            self._null_mode = True
        return applied, False

    def _thinned_replay_collision(
        self, touched_count: int, touched: np.ndarray
    ) -> tuple[int, int]:
        """Accept/reject and maybe apply the run-ending proposal.

        Pre-state resolution is the base engine's replay (the touched
        multiset here includes rejected proposals' unchanged agents);
        acceptance uses the resolved pre-states.  Returns ``(chain steps
        consumed, active interactions)``.
        """
        rng = self._rng
        n = self.n
        t = touched_count
        cross = t * (n - t)
        ticket = int(rng.integers(0, t * (2 * n - t - 1)))
        if ticket < 2 * cross:
            touched_state = self._draw_one(touched)
            remainder = self._counts.copy()
            remainder[: touched.shape[0]] -= touched
            fresh_state = self._draw_one(remainder)
            if ticket < cross:
                pre_initiator, pre_responder = touched_state, fresh_state
            else:
                pre_initiator, pre_responder = fresh_state, touched_state
        else:
            pool = touched.copy()
            pre_initiator = self._draw_one(pool)
            pool[pre_initiator] -= 1
            pre_responder = self._draw_one(pool)
        weight_table = self._weight_of_id
        accept = (
            float(weight_table[pre_initiator] * weight_table[pre_responder])
            * self._inv_wmax2
        )
        if accept < 1.0 and float(rng.random()) >= accept:
            return 0, 0
        return 1, self._apply_single(pre_initiator, pre_responder)
