"""Declarative scheduler specs: the adversarial-schedule analog of FaultPlan.

The paper's analysis assumes the uniform random scheduler Γ: every ordered
pair of distinct agents is equally likely at every step (Section 2).  A
:class:`SchedulerSpec` names a *deviation* from Γ declaratively — by
family and parameters, never by callables — so it can enter a
:class:`~repro.orchestration.spec.TrialSpec` content hash, cross process
boundaries, and be rebuilt identically inside a worker.

Families and their exchangeability class:

``uniform``
    Γ itself, as a named spec.  Exists so grids can carry an explicit
    baseline cell; the engine build path treats it exactly like
    ``scheduler=None`` (bit-identical trajectories), and
    :meth:`~repro.orchestration.spec.TrialSpec.create` normalizes it to
    ``None`` so the two spellings hash identically.

``weighted``
    State-weighted non-uniform schedule under the *pair-product* model:
    agent ``u`` carries weight ``w(u) = weights[output(state(u))]``
    (default 1.0 for unlisted output symbols) and the scheduler selects
    ordered pair ``(u, v)`` with probability proportional to
    ``w(u) * w(v)``.  Every engine realizes this by thinning the uniform
    scheduler — accept a proposed pair with probability
    ``w(u) w(v) / wmax^2`` — which is sound on the count-level engines
    because acceptance depends only on the pair's own states, never on
    agent identity.  **Exchangeable**: agents with equal states stay
    interchangeable, so multiset/batch/superbatch remain exact.

``ring`` / ``torus`` / ``regular`` / ``cliques``
    Graph-restricted schedules: interactions are drawn uniformly from the
    directed edge multiset of a communication graph (see
    :mod:`repro.schedulers.graphs`).  **Identity-dependent**: which agent
    is which matters, so these degrade to the per-agent engine (the
    degradation ladder in :func:`resolve_schedule_engine`), with
    ``degraded_from`` recorded in the trial store.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ExperimentError

__all__ = [
    "SCHEDULERS_VERSION",
    "FAMILIES",
    "GRAPH_FAMILIES",
    "SchedulerSpec",
    "resolve_schedule_engine",
    "scheduler_json",
]

#: Version tag stamped into serialized scheduler records (store rows).
SCHEDULERS_VERSION = 1

#: All scheduler families, in documentation order.
FAMILIES = ("uniform", "weighted", "ring", "torus", "regular", "cliques")

#: The identity-dependent (non-exchangeable) families.
GRAPH_FAMILIES = ("ring", "torus", "regular", "cliques")


@dataclass(frozen=True)
class SchedulerSpec:
    """One interaction schedule, named declaratively.

    Instances are immutable and hashable; construct through
    :meth:`create` (or :meth:`coerce`), which validates and normalizes so
    that semantically identical specs compare — and content-hash —
    identically.
    """

    family: str
    #: ``weighted`` only: sorted ``(output symbol, weight)`` pairs.
    weights: tuple[tuple[str, float], ...] = ()
    #: ``torus`` only: grid rows (0 = square, ``isqrt(n)``).
    rows: int = 0
    #: ``regular`` only: vertex degree (even, >= 2).
    degree: int = 0
    #: ``regular`` only: seed of the topology stream (spec identity,
    #: independent of the trial seed).
    graph_seed: int = 0
    #: ``cliques`` only: number of cliques the population splits into.
    cliques: int = 0
    #: ``cliques`` only: directed bridge-edge pairs added round-robin.
    bridges: int = 0

    @classmethod
    def create(
        cls,
        family: str,
        *,
        weights: Mapping[str, float] | None = None,
        rows: int | None = None,
        degree: int | None = None,
        graph_seed: int | None = None,
        cliques: int | None = None,
        bridges: int | None = None,
    ) -> "SchedulerSpec":
        """Validate and normalize one scheduler spec."""
        if family not in FAMILIES:
            known = ", ".join(FAMILIES)
            raise ExperimentError(
                f"unknown scheduler family {family!r}; known: {known}"
            )
        given = {
            "weights": weights,
            "rows": rows,
            "degree": degree,
            "graph_seed": graph_seed,
            "cliques": cliques,
            "bridges": bridges,
        }
        allowed = {
            "uniform": (),
            "weighted": ("weights",),
            "ring": (),
            "torus": ("rows",),
            "regular": ("degree", "graph_seed"),
            "cliques": ("cliques", "bridges"),
        }[family]
        for key, value in given.items():
            if value is not None and key not in allowed:
                raise ExperimentError(
                    f"scheduler family {family!r} takes no {key!r} parameter"
                )

        normalized_weights: tuple[tuple[str, float], ...] = ()
        if family == "weighted":
            if not weights:
                raise ExperimentError(
                    "weighted scheduler needs a non-empty weights mapping"
                )
            pairs = []
            for symbol, weight in weights.items():
                value = float(weight)
                if not math.isfinite(value) or value <= 0.0:
                    raise ExperimentError(
                        f"weight for output {symbol!r} must be positive and "
                        f"finite, got {weight!r}"
                    )
                pairs.append((str(symbol), value))
            normalized_weights = tuple(sorted(pairs))

        if family == "torus" and rows is not None and rows < 3:
            raise ExperimentError(f"torus rows must be at least 3, got {rows}")
        if family == "regular":
            if degree is None:
                raise ExperimentError("regular scheduler needs a degree")
            if degree < 2 or degree % 2 != 0:
                raise ExperimentError(
                    f"regular degree must be even and >= 2, got {degree}"
                )
        if family == "cliques":
            if cliques is None or cliques < 1:
                raise ExperimentError(
                    f"cliques scheduler needs cliques >= 1, got {cliques}"
                )
            if bridges is not None and bridges < 0:
                raise ExperimentError(
                    f"bridge count must be non-negative, got {bridges}"
                )
            if cliques == 1 and bridges:
                raise ExperimentError(
                    "a single clique is the complete graph; bridges make no "
                    "sense there"
                )

        return cls(
            family=family,
            weights=normalized_weights,
            rows=int(rows or 0),
            degree=int(degree or 0),
            graph_seed=int(graph_seed or 0),
            cliques=int(cliques or 0),
            bridges=int(bridges or 0),
        )

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "SchedulerSpec":
        """Build a spec from a plain mapping, rejecting unknown keys."""
        known = {
            "family",
            "weights",
            "rows",
            "degree",
            "graph_seed",
            "cliques",
            "bridges",
        }
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(
                f"unknown scheduler spec fields: {sorted(unknown)}"
            )
        if "family" not in data:
            raise ExperimentError("scheduler spec needs a 'family' field")
        kwargs = {key: data[key] for key in known - {"family"} if key in data}
        return cls.create(str(data["family"]), **kwargs)  # type: ignore[arg-type]

    @classmethod
    def coerce(
        cls, value: "SchedulerSpec | Mapping[str, object] | None"
    ) -> "SchedulerSpec | None":
        """Accept a spec, a mapping describing one, or ``None``."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_mapping(value)
        raise ExperimentError(
            f"cannot interpret {value!r} as a scheduler spec"
        )

    @property
    def exchangeable(self) -> bool:
        """Whether agents with equal states stay interchangeable.

        Exchangeable schedules (uniform, state-weighted) are functions of
        the state *multiset* only, so the count-level engines remain
        exact.  Graph families depend on agent identity and must run on
        the per-agent engine.
        """
        return self.family not in GRAPH_FAMILIES

    @property
    def weight_map(self) -> dict[str, float]:
        """``weighted`` family: output symbol -> weight (others: empty)."""
        return dict(self.weights)

    def validate_against(self, n: int) -> None:
        """Check population-size constraints; raise ExperimentError."""
        if self.family in ("ring", "torus", "regular") and n < 3:
            raise ExperimentError(
                f"{self.family} schedule needs at least 3 agents, got {n}"
            )
        if self.family == "torus":
            rows = self.rows or math.isqrt(n)
            if self.rows == 0 and rows * rows != n:
                raise ExperimentError(
                    f"square torus needs a perfect-square population, got {n}"
                )
            if n % rows != 0 or rows < 3 or n // rows < 3:
                raise ExperimentError(
                    f"torus {rows}x{n // rows} needs both sides >= 3 "
                    f"(n={n}, rows={rows})"
                )
        if self.family == "regular" and self.degree >= n:
            raise ExperimentError(
                f"degree {self.degree} needs more than {n} agents"
            )
        if self.family == "cliques":
            if n % self.cliques != 0:
                raise ExperimentError(
                    f"population {n} does not split into {self.cliques} "
                    f"equal cliques"
                )
            if n // self.cliques < 2:
                raise ExperimentError(
                    f"cliques of size {n // self.cliques} cannot interact "
                    f"(n={n}, cliques={self.cliques})"
                )
            if self.bridges > n:
                raise ExperimentError(
                    f"at most n={n} bridge pairs are meaningful, "
                    f"got {self.bridges}"
                )

    def canonical(self) -> dict[str, object]:
        """JSON-ready canonical form: family plus only the set fields.

        Default-valued parameters are omitted (the
        :func:`~repro.orchestration.registry.canonical_params` idiom), so
        e.g. ``regular`` with ``graph_seed=0`` and with the field absent
        hash identically.
        """
        payload: dict[str, object] = {"family": self.family}
        if self.weights:
            payload["weights"] = {symbol: weight for symbol, weight in self.weights}
        if self.rows:
            payload["rows"] = self.rows
        if self.degree:
            payload["degree"] = self.degree
        if self.graph_seed:
            payload["graph_seed"] = self.graph_seed
        if self.cliques:
            payload["cliques"] = self.cliques
        if self.bridges:
            payload["bridges"] = self.bridges
        return payload

    def describe(self) -> str:
        """Short human label, e.g. ``weighted(L=4)`` or ``cliques(4,b=4)``."""
        if self.family == "weighted":
            inner = ",".join(f"{s}={w:g}" for s, w in self.weights)
            return f"weighted({inner})"
        if self.family == "torus" and self.rows:
            return f"torus(rows={self.rows})"
        if self.family == "regular":
            label = f"regular({self.degree}"
            if self.graph_seed:
                label += f",g{self.graph_seed}"
            return label + ")"
        if self.family == "cliques":
            return f"cliques({self.cliques},b={self.bridges})"
        return self.family


def resolve_schedule_engine(
    spec: SchedulerSpec | None, engine: str
) -> str:
    """The degradation ladder: the fastest engine that is still *sound*.

    Exchangeable specs keep whatever engine the fault ladder and the
    crossover policy picked (superbatch/batch/multiset run the weighted
    schedule by thinning their block samplers); identity-dependent specs
    force the per-agent engine — graceful degradation to a correct
    answer, never a fast wrong one.
    """
    if spec is None or spec.exchangeable:
        return engine
    return "agent"


def scheduler_json(
    spec: SchedulerSpec, degraded_from: str | None = None
) -> str:
    """Serialized scheduler record for a trial-store row."""
    payload: dict[str, object] = {
        "version": SCHEDULERS_VERSION,
        "spec": spec.canonical(),
    }
    if degraded_from is not None:
        payload["degraded_from"] = degraded_from
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
