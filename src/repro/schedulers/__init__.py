"""Adversarial interaction schedules: specs, graphs, weighted engines.

The subsystem behind :class:`~repro.orchestration.spec.TrialSpec`'s
optional ``scheduler`` field.  See :mod:`repro.schedulers.spec` for the
declarative spec and exchangeability classes, :mod:`repro.schedulers
.graphs` for graph-restricted schedules, and :mod:`repro.schedulers
.weighted` for the state-weighted engines (thinned uniform scheduler on
every count-level engine).  DESIGN.md Section 11 has the faithfulness
argument.
"""

from repro.schedulers.graphs import (
    GraphScheduler,
    clique_edges,
    edges_for,
    graph_scheduler_for,
    regular_edges,
    ring_edges,
    torus_edges,
)
from repro.schedulers.spec import (
    FAMILIES,
    GRAPH_FAMILIES,
    SCHEDULERS_VERSION,
    SchedulerSpec,
    resolve_schedule_engine,
    scheduler_json,
)
from repro.schedulers.weighted import (
    StateWeightedScheduler,
    WeightedBatchSimulator,
    WeightedMultisetSimulator,
    WeightedSuperBatchSimulator,
)

__all__ = [
    "FAMILIES",
    "GRAPH_FAMILIES",
    "SCHEDULERS_VERSION",
    "SchedulerSpec",
    "resolve_schedule_engine",
    "scheduler_json",
    "GraphScheduler",
    "clique_edges",
    "edges_for",
    "graph_scheduler_for",
    "regular_edges",
    "ring_edges",
    "torus_edges",
    "StateWeightedScheduler",
    "WeightedBatchSimulator",
    "WeightedMultisetSimulator",
    "WeightedSuperBatchSimulator",
]
