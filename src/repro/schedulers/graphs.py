"""Communication-graph construction and the edge-restricted scheduler.

A graph-restricted schedule replaces the complete interaction graph of
Section 2 with a sparse communication graph ``G``: at every step the
scheduler draws uniformly from the *directed edge multiset* of ``G``.
Undirected graphs contribute both orientations of every edge, so each
undirected edge is twice as likely as a single ordered pair — matching
how the uniform scheduler weights the complete graph.

The builders here are deterministic functions of the spec (the random
``d``-regular family draws its topology from ``graph_seed`` on a
dedicated stream, *independent of the trial seed*), so a spec names one
graph, not a distribution over graphs: two trials with different seeds
run on the same topology, and the topology is part of the spec identity.

Duplicate directed edges are kept, not deduplicated: the ``regular``
family is a union of ``degree/2`` random Hamiltonian cycles — a standard
random-regular *multigraph* model — and a repeated edge is honestly
twice as likely to fire.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ScheduleError
from repro.schedulers.spec import SchedulerSpec

__all__ = [
    "GRAPH_STREAM",
    "GraphScheduler",
    "ring_edges",
    "torus_edges",
    "regular_edges",
    "clique_edges",
    "edges_for",
    "graph_scheduler_for",
]

#: Spawn-key namespace for topology streams (the FAULT_STREAM idiom):
#: keeps the d-regular construction independent of every trial stream.
GRAPH_STREAM = 0x5C4E


def ring_edges(n: int) -> np.ndarray:
    """Directed edges of the ``n``-cycle: ``2n`` ordered pairs."""
    if n < 3:
        raise ScheduleError(f"a ring needs at least 3 agents, got {n}")
    agents = np.arange(n, dtype=np.int64)
    return np.stack(
        [
            np.concatenate([agents, agents]),
            np.concatenate([(agents + 1) % n, (agents - 1) % n]),
        ],
        axis=1,
    )


def torus_edges(n: int, rows: int = 0) -> np.ndarray:
    """Directed edges of the wraparound ``rows x (n/rows)`` grid.

    ``rows=0`` means a square torus (``isqrt(n)`` a side), requiring a
    perfect-square population.  Four neighbours per agent: ``4n``
    ordered pairs.
    """
    if rows == 0:
        rows = math.isqrt(n)
        if rows * rows != n:
            raise ScheduleError(
                f"square torus needs a perfect-square population, got {n}"
            )
    if n % rows != 0 or rows < 3 or n // rows < 3:
        raise ScheduleError(
            f"torus {rows}x{n // rows if rows else 0} needs both sides >= 3"
        )
    cols = n // rows
    agents = np.arange(n, dtype=np.int64)
    row, col = agents // cols, agents % cols
    neighbours = [
        ((row + 1) % rows) * cols + col,
        ((row - 1) % rows) * cols + col,
        row * cols + (col + 1) % cols,
        row * cols + (col - 1) % cols,
    ]
    return np.stack(
        [np.tile(agents, 4), np.concatenate(neighbours)], axis=1
    )


def regular_edges(n: int, degree: int, graph_seed: int = 0) -> np.ndarray:
    """Random ``degree``-regular multigraph: a union of random cycles.

    ``degree/2`` independent Hamiltonian cycles (each a uniform random
    cyclic permutation) give every vertex degree ``degree`` and keep the
    graph connected (every cycle alone already is).  The topology is a
    pure function of ``(n, degree, graph_seed)``.
    """
    if degree < 2 or degree % 2 != 0:
        raise ScheduleError(
            f"regular degree must be even and >= 2, got {degree}"
        )
    if n < 3 or degree >= n:
        raise ScheduleError(
            f"regular degree {degree} needs a population larger than "
            f"{max(degree, 2)}, got {n}"
        )
    rng = np.random.default_rng([graph_seed, GRAPH_STREAM])
    sources, targets = [], []
    for _cycle in range(degree // 2):
        order = rng.permutation(n).astype(np.int64)
        follower = np.roll(order, -1)
        sources.extend([order, follower])
        targets.extend([follower, order])
    return np.stack(
        [np.concatenate(sources), np.concatenate(targets)], axis=1
    )


def clique_edges(n: int, cliques: int, bridges: int = 0) -> np.ndarray:
    """Union of equal cliques plus round-robin bridge edges.

    The population splits into ``cliques`` contiguous blocks, each a
    complete graph.  Bridge pair ``b`` connects member ``(b // cliques)
    % size`` of clique ``b % cliques`` to the same member index of the
    next clique (both orientations), so bridges spread evenly over
    clique boundaries and member indices.  ``cliques=1`` is the complete
    graph — the uniform scheduler, edge for edge.
    """
    if cliques < 1 or n % cliques != 0 or n // cliques < 2:
        raise ScheduleError(
            f"population {n} does not split into {cliques} cliques of "
            f"size >= 2"
        )
    size = n // cliques
    inside = np.arange(size, dtype=np.int64)
    init, resp = np.meshgrid(inside, inside, indexing="ij")
    distinct = init != resp
    block0 = np.stack([init[distinct], resp[distinct]], axis=1)
    blocks = [block0 + clique * size for clique in range(cliques)]
    for bridge in range(bridges):
        clique = bridge % cliques
        member = (bridge // cliques) % size
        here = clique * size + member
        there = ((clique + 1) % cliques) * size + member
        blocks.append(np.array([[here, there], [there, here]], dtype=np.int64))
    return np.concatenate(blocks, axis=0)


def edges_for(spec: SchedulerSpec, n: int) -> np.ndarray:
    """The directed edge multiset behind a graph-family spec."""
    if spec.family == "ring":
        return ring_edges(n)
    if spec.family == "torus":
        return torus_edges(n, spec.rows)
    if spec.family == "regular":
        return regular_edges(n, spec.degree, spec.graph_seed)
    if spec.family == "cliques":
        return clique_edges(n, spec.cliques, spec.bridges)
    raise ScheduleError(
        f"scheduler family {spec.family!r} is not graph-restricted"
    )


class GraphScheduler:
    """Uniform draws from a directed edge multiset, numpy-batched.

    Mirrors :class:`~repro.engine.scheduler.RandomScheduler`'s RNG
    contract: an ``int`` (or ``None``) seed creates a private generator;
    a passed ``numpy.random.Generator`` is *shared*, not copied, so the
    caller's stream advances with every refill.
    """

    def __init__(
        self,
        edges: np.ndarray,
        seed: int | np.random.Generator | None = None,
        batch_size: int = 16384,
    ) -> None:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2 or len(edges) == 0:
            raise ScheduleError(
                f"edge array must be a non-empty (E, 2) array, got shape "
                f"{edges.shape}"
            )
        if bool(np.any(edges[:, 0] == edges[:, 1])):
            raise ScheduleError("self-loop edges are not valid interactions")
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self._initiators = edges[:, 0].copy()
        self._responders = edges[:, 1].copy()
        self._batch_size = batch_size
        self._batch: list[tuple[int, int]] = []
        self._cursor = 0

    @property
    def rng(self) -> np.random.Generator:
        """The underlying generator (shared when one was passed in)."""
        return self._rng

    @property
    def edge_count(self) -> int:
        return len(self._initiators)

    def _refill(self) -> None:
        chosen = self._rng.integers(
            0, len(self._initiators), size=self._batch_size
        )
        self._batch = list(
            zip(
                self._initiators[chosen].tolist(),
                self._responders[chosen].tolist(),
            )
        )
        self._cursor = 0

    def next_pair(self) -> tuple[int, int]:
        if self._cursor >= len(self._batch):
            self._refill()
        pair = self._batch[self._cursor]
        self._cursor += 1
        return pair

    def pairs(self, count: int):
        """Yield ``count`` ordered pairs (testing convenience)."""
        for _ in range(count):
            yield self.next_pair()


def graph_scheduler_for(
    spec: SchedulerSpec,
    n: int,
    seed: int | np.random.Generator | None = None,
) -> GraphScheduler:
    """Build the scheduler realizing a graph-family spec for ``n`` agents."""
    return GraphScheduler(edges_for(spec, n), seed=seed)
