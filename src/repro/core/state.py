"""Agent state for PLL (the paper's Table 3).

A PLL agent carries six common variables and, depending on its group, up to
two additional variables.  We store states as an immutable named tuple
(:class:`PLLState`); fields that are "Undefined" for the agent's group in
Table 3 are ``None``.  Two normalizations against the paper's table, both
behaviour-preserving (DESIGN.md D2/D6):

* ``tick`` is not stored: it is reset at the start of every interaction and
  read only within the same interaction, so persisting it would only double
  the reachable state count.
* ``init`` is not stored: lines 11–15 set ``init = epoch`` for both parties
  of every interaction, so between interactions ``init == epoch`` always —
  the within-transition comparison uses the epoch value at entry instead.

Transitions are computed on a mutable scratch record (:class:`WorkAgent`)
and frozen back into :class:`PLLState`, keeping the module code close to
the paper's imperative pseudocode while the engine only ever sees hashable
values.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "STATUS_INITIAL",
    "STATUS_INITIAL_ALT",
    "STATUS_CANDIDATE",
    "STATUS_TIMER",
    "EPOCH_MAX",
    "PLLState",
    "WorkAgent",
]

#: The "initial" status ``X``.
STATUS_INITIAL = "X"

#: The auxiliary initial status ``Y`` used by the symmetric variant (Sec. 4).
STATUS_INITIAL_ALT = "Y"

#: Status ``A``: leader candidate.
STATUS_CANDIDATE = "A"

#: Status ``B``: timer agent.
STATUS_TIMER = "B"

#: Epochs run 1..4; epoch 4 (BackUp) is terminal.
EPOCH_MAX = 4


class PLLState(NamedTuple):
    """Immutable PLL agent state (Table 3, normalized per D2/D6).

    ``coin`` and ``duel`` are used only by the symmetric variant (Section
    4): ``coin`` is the follower's coin status (``J``/``K``/``F0``/``F1``)
    and ``duel`` is an epoch-4 leader's symmetry-breaking bit.  Both stay
    ``None`` in the asymmetric protocol so the two variants share one state
    type without inflating each other's state space.
    """

    leader: bool
    status: str
    epoch: int
    color: int
    count: int | None = None  # V_B only
    level_q: int | None = None  # V_A ∩ V_1
    done: bool | None = None  # V_A ∩ V_1
    rand: int | None = None  # V_A ∩ (V_2 ∪ V_3)
    index: int | None = None  # V_A ∩ (V_2 ∪ V_3)
    level_b: int | None = None  # V_A ∩ V_4
    coin: str | None = None  # symmetric variant, followers only
    duel: int | None = None  # symmetric variant, epoch-4 leaders only

    @classmethod
    def initial(cls) -> "PLLState":
        """``s_init``: leader, status X, epoch 1, color 0 (Table 3)."""
        return cls(leader=True, status=STATUS_INITIAL, epoch=1, color=0)

    @property
    def in_v_a(self) -> bool:
        return self.status == STATUS_CANDIDATE

    @property
    def in_v_b(self) -> bool:
        return self.status == STATUS_TIMER

    @property
    def unassigned(self) -> bool:
        """Whether the agent still has an initial status (``X`` or ``Y``)."""
        return self.status in (STATUS_INITIAL, STATUS_INITIAL_ALT)


class WorkAgent:
    """Mutable scratch copy of one agent's state during a transition.

    Mirrors :class:`PLLState` plus the two within-interaction variables the
    paper uses: ``tick`` (line 7 resets it, CountUp may raise it) and
    ``epoch_at_entry`` (the stored-state role of ``init``; see D6).
    """

    __slots__ = (
        "leader",
        "status",
        "epoch",
        "color",
        "count",
        "level_q",
        "done",
        "rand",
        "index",
        "level_b",
        "coin",
        "duel",
        "tick",
        "epoch_at_entry",
    )

    def __init__(self, state: PLLState) -> None:
        self.leader = state.leader
        self.status = state.status
        self.epoch = state.epoch
        self.color = state.color
        self.count = state.count
        self.level_q = state.level_q
        self.done = state.done
        self.rand = state.rand
        self.index = state.index
        self.level_b = state.level_b
        self.coin = state.coin
        self.duel = state.duel
        self.tick = False  # line 7
        self.epoch_at_entry = state.epoch  # the `init` variable (D6)

    def freeze(self) -> PLLState:
        """Snapshot back to an immutable state (``tick`` dropped per D2)."""
        return PLLState(
            leader=self.leader,
            status=self.status,
            epoch=self.epoch,
            color=self.color,
            count=self.count,
            level_q=self.level_q,
            done=self.done,
            rand=self.rand,
            index=self.index,
            level_b=self.level_b,
            coin=self.coin,
            duel=self.duel,
        )

    @property
    def in_v_a(self) -> bool:
        return self.status == STATUS_CANDIDATE

    @property
    def in_v_b(self) -> bool:
        return self.status == STATUS_TIMER

    @property
    def unassigned(self) -> bool:
        return self.status in (STATUS_INITIAL, STATUS_INITIAL_ALT)
