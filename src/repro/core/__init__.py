"""The paper's contribution: PLL and its symmetric variant."""

from repro.core.backup import backup
from repro.core.countup_module import count_up
from repro.core.invariants import (
    GroupCensus,
    census,
    check_at_least_one_leader,
    check_coin_balance,
    check_lemma4,
    check_state_domains,
)
from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol, VARIANTS
from repro.core.quick_elimination import quick_elimination
from repro.core.state import (
    EPOCH_MAX,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_TIMER,
    PLLState,
    WorkAgent,
)
from repro.core.symmetric import SymmetricPLLProtocol
from repro.core.tournament import tournament

__all__ = [
    "EPOCH_MAX",
    "GroupCensus",
    "PLLParameters",
    "PLLProtocol",
    "PLLState",
    "STATUS_CANDIDATE",
    "STATUS_INITIAL",
    "STATUS_INITIAL_ALT",
    "STATUS_TIMER",
    "SymmetricPLLProtocol",
    "VARIANTS",
    "WorkAgent",
    "backup",
    "census",
    "check_at_least_one_leader",
    "check_coin_balance",
    "check_lemma4",
    "check_state_domains",
    "count_up",
    "quick_elimination",
    "tournament",
]
