"""Runtime invariant checkers for PLL configurations.

These functions make the paper's structural guarantees executable; the test
suite applies them to every configuration along random executions
(property-based failure hunting), and the experiments use them as safety
rails.  All take decoded configurations (sequences of
:class:`~repro.core.state.PLLState`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.coins.symmetric_coin import COIN_STATUSES, coin_counts_balanced
from repro.core.params import PLLParameters
from repro.core.state import (
    EPOCH_MAX,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_TIMER,
    PLLState,
)
from repro.errors import SimulationError

__all__ = [
    "GroupCensus",
    "census",
    "check_lemma4",
    "check_at_least_one_leader",
    "check_state_domains",
    "check_coin_balance",
]


@dataclass(frozen=True)
class GroupCensus:
    """Population counts by status/output group (the paper's V_Z sets)."""

    n: int
    v_x: int  # unassigned agents (statuses X and Y)
    v_a: int
    v_b: int
    leaders: int
    followers: int

    @property
    def all_assigned(self) -> bool:
        return self.v_x == 0


def census(config: Sequence[PLLState]) -> GroupCensus:
    """Tally the group sizes of a configuration."""
    v_x = v_a = v_b = leaders = 0
    for state in config:
        if state.status == STATUS_CANDIDATE:
            v_a += 1
        elif state.status == STATUS_TIMER:
            v_b += 1
        else:
            v_x += 1
        if state.leader:
            leaders += 1
    n = len(config)
    return GroupCensus(
        n=n,
        v_x=v_x,
        v_a=v_a,
        v_b=v_b,
        leaders=leaders,
        followers=n - leaders,
    )


def check_lemma4(config: Sequence[PLLState]) -> None:
    """Lemma 4: once every agent is assigned, ``|V_A| >= n/2``,
    ``|V_F| >= n/2`` and ``|V_B| >= 1``.

    No-op while unassigned agents remain (the lemma's precondition).
    Raises :class:`~repro.errors.SimulationError` on violation.
    """
    counts = census(config)
    if not counts.all_assigned:
        return
    if 2 * counts.v_a < counts.n:
        raise SimulationError(
            f"Lemma 4 violated: |V_A| = {counts.v_a} < n/2 = {counts.n / 2}"
        )
    if 2 * counts.followers < counts.n:
        raise SimulationError(
            f"Lemma 4 violated: |V_F| = {counts.followers} < n/2 = {counts.n / 2}"
        )
    if counts.v_b < 1:
        raise SimulationError("Lemma 4 violated: V_B is empty")


def check_at_least_one_leader(config: Sequence[PLLState]) -> None:
    """No module may ever eliminate all leaders (Sections 3.2.3-3.2.5)."""
    if not any(state.leader for state in config):
        raise SimulationError("all leaders were eliminated")


def check_state_domains(state: PLLState, params: PLLParameters) -> None:
    """Table 3 domain and group-consistency check for a single state.

    Verifies every defined variable is within its domain and that exactly
    the variables of the agent's group are defined (``None`` elsewhere),
    per the normalization rules in :mod:`repro.core.state`.
    """

    def fail(reason: str) -> None:
        raise SimulationError(f"invalid state {state!r}: {reason}")

    if state.status not in (
        STATUS_INITIAL,
        STATUS_INITIAL_ALT,
        STATUS_CANDIDATE,
        STATUS_TIMER,
    ):
        fail(f"unknown status {state.status!r}")
    if not 1 <= state.epoch <= EPOCH_MAX:
        fail(f"epoch {state.epoch} outside 1..{EPOCH_MAX}")
    if state.color not in (0, 1, 2):
        fail(f"color {state.color} outside 0..2")
    if state.coin is not None and state.coin not in COIN_STATUSES:
        fail(f"unknown coin status {state.coin!r}")
    if state.coin is not None and state.leader:
        fail("leaders do not carry coins")
    if state.duel is not None and not state.leader:
        fail("only leaders carry duel bits")

    if state.status == STATUS_TIMER:
        if state.count is None or not 0 <= state.count < params.cmax:
            fail(f"V_B count {state.count} outside 0..{params.cmax - 1}")
        if state.leader:
            fail("V_B agents are never leaders")
        for name in ("level_q", "done", "rand", "index", "level_b"):
            if getattr(state, name) is not None:
                fail(f"V_B agent defines {name}")
        return

    if state.count is not None:
        fail("non-timer agent defines count")

    if state.status in (STATUS_INITIAL, STATUS_INITIAL_ALT):
        if not state.leader:
            fail("unassigned agents are leaders")
        for name in ("level_q", "done", "rand", "index", "level_b", "coin", "duel"):
            if getattr(state, name) is not None:
                fail(f"unassigned agent defines {name}")
        return

    # V_A: exactly the current epoch's variables are defined.
    epoch = state.epoch
    if epoch == 1:
        if state.level_q is None or not 0 <= state.level_q <= params.lmax:
            fail(f"levelQ {state.level_q} outside 0..{params.lmax}")
        if state.done is None:
            fail("V_A ∩ V_1 agent lacks done")
        stale = ("rand", "index", "level_b")
    elif epoch in (2, 3):
        if state.rand is None or not 0 <= state.rand < params.rand_space:
            fail(f"rand {state.rand} outside 0..{params.rand_space - 1}")
        if state.index is None or not 0 <= state.index <= params.phi:
            fail(f"index {state.index} outside 0..{params.phi}")
        stale = ("level_q", "done", "level_b")
    else:
        if state.level_b is None or not 0 <= state.level_b <= params.lmax:
            fail(f"levelB {state.level_b} outside 0..{params.lmax}")
        stale = ("level_q", "done", "rand", "index")
    for name in stale:
        if getattr(state, name) is not None:
            fail(f"agent in epoch {epoch} still defines {name}")


def check_coin_balance(config: Sequence[PLLState]) -> None:
    """Section 4 fairness invariant: ``#F0 == #F1`` at all times."""
    if not coin_counts_balanced([state.coin for state in config]):
        raise SimulationError("coin populations unbalanced: #F0 != #F1")
