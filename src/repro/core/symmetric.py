"""The symmetric variant of PLL (Section 4).

The asymmetric PLL uses initiator/responder roles in exactly two places:
status assignment and coin flips.  Section 4 replaces both:

* **Status assignment** gains an auxiliary initial status ``Y`` and the
  role-free rules ``X x X -> Y x Y``, ``Y x Y -> X x X``,
  ``X x Y -> A x B`` (the ``X`` party becomes the candidate); an ``X`` or
  ``Y`` agent meeting an ``A`` or ``B`` agent becomes an ``A`` follower.
* **Coin flips** use the follower coin construct of
  :mod:`repro.coins.symmetric_coin`: every follower carries a coin status
  (born ``J``); follower pairs churn ``J``/``K`` into exactly balanced
  ``F0``/``F1`` populations; a leader flips by *reading* a settled coin —
  ``F0`` is head, ``F1`` is tail — which is fair and independent across
  flips.

Two deviations the paper's two-paragraph sketch leaves open (DESIGN.md):

* **D7** — line 58 ("two equal leaders: the responder concedes") is
  inherently asymmetric and in fact *cannot* be made symmetric for agents
  in identical states.  We give each epoch-4 leader a ``duel`` bit that it
  refreshes from every settled coin it reads; when two ``V_A`` leaders
  meet with *different* duel bits, the tail-bit one concedes.  Identical
  states imply equal bits, so the symmetry property holds, while two
  leaders still resolve in ``O(n)`` expected parallel time.
* **D8** — for ``n = 2`` the initial configuration is symmetric and every
  interaction preserves symmetry (``X,X <-> Y,Y`` forever), so *no*
  symmetric protocol elects a leader from two agents; the variant requires
  ``n >= 3``.

Unlike the asymmetric protocol, agents can be stored with status ``X`` or
``Y`` *and* an advanced epoch (they keep exchanging colors while waiting to
be assigned), so group-variable initialization on conversion is forced by
resetting the stored-``init`` surrogate to 0 and extending epoch-entry
initialization to epoch 1.
"""

from __future__ import annotations

from repro.coins.symmetric_coin import COIN_J, coin_flip_value, pair_coins
from repro.core.countup_module import count_up
from repro.core.params import PLLParameters
from repro.core.state import (
    EPOCH_MAX,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_TIMER,
    PLLState,
    WorkAgent,
)
from repro.engine.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from repro.errors import ParameterError

__all__ = ["SymmetricPLLProtocol"]


def _demote(agent: WorkAgent) -> None:
    """Turn a leader into a follower; a fresh follower's coin starts at J.

    A no-op for agents that are already followers: the epidemic rules call
    this on whichever side holds the smaller value, which may be a follower
    relaying the maximum — resetting *its* coin would orphan the matching
    ``F0``/``F1`` partner and break the exact-balance invariant.
    """
    if agent.leader:
        agent.leader = False
        agent.coin = COIN_J
        agent.duel = None


class SymmetricPLLProtocol(LeaderElectionProtocol):
    """Leader election with symmetric transitions (Section 4)."""

    monotone_leader = True

    def __init__(self, params: PLLParameters) -> None:
        self.params = params
        self.name = "PLL-symmetric"

    @classmethod
    def for_population(cls, n: int) -> "SymmetricPLLProtocol":
        """Canonical parameters; requires ``n >= 3`` (DESIGN.md D8)."""
        if n < 3:
            raise ParameterError(
                "the symmetric variant cannot elect a leader from n < 3 "
                "agents (symmetric trajectories never break a 2-agent tie)"
            )
        return cls(PLLParameters.for_population(n))

    def initial_state(self) -> PLLState:
        return PLLState.initial()

    def output(self, state: PLLState) -> str:
        return LEADER if state.leader else FOLLOWER

    def is_symmetric(self) -> bool:
        return True

    def state_bound(self) -> int:
        # Followers additionally carry one of 4 coin statuses; epoch-4
        # leaders carry a duel bit.  Still O(m) overall.
        return self.params.state_bound() * 8

    def compile_kernel(self):
        """Struct-of-arrays lowering of the symmetric variant.

        See :mod:`repro.core.kernels`; the coin construct and the D7
        duel bits are part of the compiled field kernel, so symmetric
        campaigns get the same no-Python-``delta`` hot path as PLL.
        """
        from repro.core.kernels import symmetric_pll_kernel_spec

        return symmetric_pll_kernel_spec(self.params)

    def transition(
        self, initiator: PLLState, responder: PLLState
    ) -> tuple[PLLState, PLLState]:
        agents = [WorkAgent(initiator), WorkAgent(responder)]
        self._assign_status(agents)
        self._advance_epochs(agents)
        self._update_coins(agents)
        self._run_module(agents)
        return agents[0].freeze(), agents[1].freeze()

    # ------------------------------------------------------------------
    # status assignment (role-free)
    # ------------------------------------------------------------------

    def _assign_status(self, agents: list[WorkAgent]) -> None:
        first, second = agents
        statuses = (first.status, second.status)
        if statuses == (STATUS_INITIAL, STATUS_INITIAL):
            first.status = STATUS_INITIAL_ALT
            second.status = STATUS_INITIAL_ALT
            return
        if statuses == (STATUS_INITIAL_ALT, STATUS_INITIAL_ALT):
            first.status = STATUS_INITIAL
            second.status = STATUS_INITIAL
            return
        if set(statuses) == {STATUS_INITIAL, STATUS_INITIAL_ALT}:
            # X x Y -> A x B, decided by *state*, not by role: the X party
            # becomes the leader candidate, the Y party the timer.
            for agent in agents:
                if agent.status == STATUS_INITIAL:
                    agent.status = STATUS_CANDIDATE
                    agent.epoch_at_entry = 0  # force group init (any epoch)
                else:
                    agent.status = STATUS_TIMER
                    agent.count = 0
                    _demote(agent)
            return
        # An X or Y agent meeting an assigned (A/B) agent joins V_A as a
        # follower that never plays the lottery.
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.unassigned and not other.unassigned:
                mine.status = STATUS_CANDIDATE
                mine.epoch_at_entry = 0  # force group init
                _demote(mine)

    # ------------------------------------------------------------------
    # epochs (identical to Algorithm 1 lines 7-15, epoch-1 entry added)
    # ------------------------------------------------------------------

    def _advance_epochs(self, agents: list[WorkAgent]) -> None:
        count_up(agents, self.params)
        for agent in agents:
            if agent.tick:
                agent.epoch = min(agent.epoch + 1, EPOCH_MAX)
        shared_epoch = max(agents[0].epoch, agents[1].epoch)
        for agent in agents:
            agent.epoch = shared_epoch
            if shared_epoch > agent.epoch_at_entry:
                self._enter_epoch(agent)
                agent.epoch_at_entry = shared_epoch

    def _enter_epoch(self, agent: WorkAgent) -> None:
        if not agent.in_v_a:
            return
        agent.level_q = None
        agent.done = None
        agent.rand = None
        agent.index = None
        agent.level_b = None
        agent.duel = None
        if agent.epoch == 1:
            # Conversions can happen at any stored epoch (see module
            # docstring); a fresh candidate still playing the lottery has
            # done=False, a fresh follower has done=True.
            agent.level_q = 0
            agent.done = not agent.leader
        elif agent.epoch in (2, 3):
            agent.rand = 0
            agent.index = 0
        else:
            agent.level_b = 0
            if agent.leader:
                agent.duel = 0

    # ------------------------------------------------------------------
    # follower coins
    # ------------------------------------------------------------------

    def _update_coins(self, agents: list[WorkAgent]) -> None:
        first, second = agents
        if (
            not first.leader
            and not second.leader
            and first.coin is not None
            and second.coin is not None
        ):
            first.coin, second.coin = pair_coins(first.coin, second.coin)

    # ------------------------------------------------------------------
    # modules (coin reads replace role bits)
    # ------------------------------------------------------------------

    def _run_module(self, agents: list[WorkAgent]) -> None:
        epoch = agents[0].epoch
        if epoch == 1:
            self._quick_elimination(agents)
        elif epoch in (2, 3):
            self._tournament(agents)
        else:
            self._backup(agents)

    def _quick_elimination(self, agents: list[WorkAgent]) -> None:
        lmax = self.params.lmax
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if (
                mine.leader
                and mine.in_v_a
                and not other.leader
                and mine.done is False
            ):
                flip = coin_flip_value(other.coin)
                if flip == 1:
                    mine.level_q = min(mine.level_q + 1, lmax)
                elif flip == 0:
                    mine.done = True
        first, second = agents
        if first.in_v_a and second.in_v_a and first.done and second.done:
            for i in (0, 1):
                mine, other = agents[i], agents[1 - i]
                if mine.level_q < other.level_q:
                    mine.level_q = other.level_q
                    _demote(mine)

    def _tournament(self, agents: list[WorkAgent]) -> None:
        phi = self.params.phi
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.in_v_a and not other.leader and mine.index < phi:
                flip = coin_flip_value(other.coin)
                if flip is None:
                    continue
                if mine.leader:
                    mine.rand = 2 * mine.rand + flip
                mine.index = min(mine.index + 1, phi)
        first, second = agents
        if (
            first.in_v_a
            and second.in_v_a
            and first.index == phi
            and second.index == phi
        ):
            for i in (0, 1):
                mine, other = agents[i], agents[1 - i]
                if mine.rand < other.rand:
                    mine.rand = other.rand
                    _demote(mine)

    def _backup(self, agents: list[WorkAgent]) -> None:
        lmax = self.params.lmax
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.leader and mine.in_v_a and not other.leader:
                flip = coin_flip_value(other.coin)
                if flip is None:
                    continue
                mine.duel = flip  # refresh the symmetry-breaking bit (D7)
                if mine.tick and flip == 1:
                    mine.level_b = min(mine.level_b + 1, lmax)
        first, second = agents
        if first.in_v_a and second.in_v_a:
            for i in (0, 1):
                mine, other = agents[i], agents[1 - i]
                if mine.level_b < other.level_b:
                    mine.level_b = other.level_b
                    _demote(mine)
        # D7: symmetric stand-in for line 58 — duel bits decide; equal
        # bits (in particular identical states) change nothing.
        first, second = agents
        if first.leader and second.leader and first.in_v_a and second.in_v_a:
            if first.duel != second.duel:
                _demote(first if first.duel == 0 else second)
