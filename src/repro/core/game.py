"""The abstract competition game of Section 3.1.1.

QuickElimination simulates this game: every player flips a fair coin until
the first tail, scoring the number of heads; the players with the maximum
score win.  The paper's analysis shows ``P(#winners = i) <= 2^(1-i)`` for
``i >= 2`` by solving ``p_{i,j} = 2^{-i} + 2^{-i} p_{i,j+1}`` (the
probability that ``i`` tied players all stay tied to the end is
``1/(2^i - 1)``).

This module implements the game directly — no protocol, no scheduler — so
the survivor law can be validated independently of the simulation stack,
and the protocol's measured distribution (experiment E6) can be compared
against the game it is supposed to simulate.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "play_competition_game",
    "winner_distribution",
    "tie_survival_probability",
]


def play_competition_game(
    n: int, rng: np.random.Generator
) -> tuple[int, list[int]]:
    """One round of the game: returns (#winners, all scores).

    Each player's score is geometric: the number of heads before the first
    tail of a fair coin.
    """
    if n < 1:
        raise ParameterError(f"the game needs at least one player, got {n}")
    # Geometric(1/2) counting failures before the first success:
    scores = rng.geometric(0.5, size=n) - 1
    best = int(scores.max())
    winners = int((scores == best).sum())
    return winners, scores.tolist()


def winner_distribution(
    n: int, trials: int, seed: int | None = None
) -> dict[int, float]:
    """Empirical PMF of the winner count over repeated games."""
    if trials < 1:
        raise ParameterError(f"trials must be positive, got {trials}")
    rng = np.random.default_rng(seed)
    counts: Counter[int] = Counter()
    for _ in range(trials):
        winners, _scores = play_competition_game(n, rng)
        counts[winners] += 1
    return {winners: count / trials for winners, count in sorted(counts.items())}


def tie_survival_probability(i: int) -> float:
    """``p_{i,j} = 1/(2^i - 1)``: the exact tie-to-the-end probability.

    This is the closed form the paper derives for the probability that,
    once exactly ``i`` players share the lead, all ``i`` end up winning.
    It is bounded by ``2^(1-i)``, which is the form Lemma 7 uses.
    """
    if i < 1:
        raise ParameterError(f"i must be at least 1, got {i}")
    return 1.0 / (2**i - 1) if i > 1 else 1.0
