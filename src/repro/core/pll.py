"""The protocol ``P_LL`` — Algorithm 1 of the paper.

``PLLProtocol`` is the paper's primary contribution: leader election with
``O(log n)`` expected parallel stabilization time and ``O(log n)`` states
per agent, given the rough size knowledge ``m``.

The main transition proceeds in the paper's four parts: (1) status
assignment, (2) tick/epoch management via CountUp, (3) group variable
initialization on epoch entry, (4) dispatch to the epoch's module —
QuickElimination (epoch 1), Tournament (epochs 2 and 3), BackUp (epoch 4).

``variant`` selects which modules are active, giving the ablation
protocols used by experiments E1/E12: ``"full"`` is PLL; ``"no-tournament"``
(QuickElimination + BackUp) is the lottery-style baseline in the spirit of
[Ali+17] — its expected time degrades to ``O(log^2 n)`` because a
constant-probability QuickElimination tie must be resolved by BackUp;
``"backup-only"`` strips both fast modules and relies on the safety net
alone.
"""

from __future__ import annotations

from repro.core.backup import backup
from repro.core.countup_module import count_up
from repro.core.params import PLLParameters
from repro.core.quick_elimination import quick_elimination
from repro.core.state import (
    EPOCH_MAX,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_TIMER,
    PLLState,
    WorkAgent,
)
from repro.core.tournament import tournament
from repro.engine.protocol import FOLLOWER, LEADER, LeaderElectionProtocol
from repro.errors import ParameterError

__all__ = ["PLLProtocol", "VARIANTS"]

#: Recognized protocol variants (see module docstring).
VARIANTS = ("full", "no-tournament", "backup-only")


class PLLProtocol(LeaderElectionProtocol):
    """Leader election in ``O(log n)`` time and ``O(log n)`` states."""

    monotone_leader = True

    def __init__(self, params: PLLParameters, variant: str = "full") -> None:
        if variant not in VARIANTS:
            raise ParameterError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        self.params = params
        self.variant = variant
        self.name = "PLL" if variant == "full" else f"PLL[{variant}]"

    @classmethod
    def for_population(cls, n: int, variant: str = "full") -> "PLLProtocol":
        """PLL with the canonical parameters ``m = ceil(log2 n)``."""
        return cls(PLLParameters.for_population(n), variant=variant)

    # ------------------------------------------------------------------
    # Protocol interface
    # ------------------------------------------------------------------

    def initial_state(self) -> PLLState:
        return PLLState.initial()

    def output(self, state: PLLState) -> str:
        return LEADER if state.leader else FOLLOWER

    def state_bound(self) -> int:
        return self.params.state_bound()

    def compile_kernel(self):
        """Struct-of-arrays lowering of Algorithm 1 (all variants).

        See :mod:`repro.core.kernels`; the engines use it to resolve
        transitions without calling :meth:`transition` on the hot path.
        """
        from repro.core.kernels import pll_kernel_spec

        return pll_kernel_spec(self.params, self.variant)

    def phase_probe(self):
        """Occupancy of Algorithm 1's phases, from state counts alone.

        The features mirror the analysis sections: ``lottery_live``
        counts epoch-1 candidates still playing QuickElimination
        (Lemma 7's elimination curve), ``survivors`` the Tournament
        leaders of epochs 2-3, ``epidemic`` the agents reached by the
        epoch >= 2 one-way epidemic (Lemma 2's fraction, as a count),
        ``backup_min_level`` the smallest BackUp level present (Lemma
        12's countdown; ``-1`` while no agent carries one), and
        ``unassigned`` the V_X stragglers of lines 1-6.
        """
        from repro.telemetry.probe import PhaseProbe

        def count_where(predicate):
            return lambda counts, n: sum(
                count for state, count in counts.items() if predicate(state)
            )

        def backup_min_level(counts, n):
            levels = [
                state.level_b
                for state, count in counts.items()
                if count > 0 and state.level_b is not None
            ]
            return min(levels) if levels else -1

        return PhaseProbe(
            {
                "leaders": count_where(lambda s: s.leader),
                "lottery_live": count_where(
                    lambda s: s.leader and s.epoch == 1 and s.done is False
                ),
                "survivors": count_where(
                    lambda s: s.leader and s.epoch in (2, 3)
                ),
                "epidemic": count_where(lambda s: s.epoch >= 2),
                "backup_min_level": backup_min_level,
                "unassigned": count_where(lambda s: s.unassigned),
            }
        )

    def transition(
        self, initiator: PLLState, responder: PLLState
    ) -> tuple[PLLState, PLLState]:
        agents = [WorkAgent(initiator), WorkAgent(responder)]
        self._assign_status(agents)
        self._advance_epochs(agents)
        self._run_module(agents)
        return agents[0].freeze(), agents[1].freeze()

    # ------------------------------------------------------------------
    # Algorithm 1, part by part
    # ------------------------------------------------------------------

    def _assign_status(self, agents: list[WorkAgent]) -> None:
        """Lines 1-6: give undetermined agents status A or B."""
        first, second = agents
        if first.status == STATUS_INITIAL and second.status == STATUS_INITIAL:
            # Line 2: the initiator becomes a leader candidate that will
            # play the QuickElimination lottery ...
            first.status = STATUS_CANDIDATE
            first.level_q = 0
            first.done = False
            first.leader = True
            # Line 3: ... and the responder becomes a timer agent.
            second.status = STATUS_TIMER
            second.count = 0
            second.leader = False
        else:
            # Lines 4-5: a late starter joins V_A as a follower that never
            # plays the lottery (done = true).
            for i in (0, 1):
                mine, other = agents[i], agents[1 - i]
                if mine.status == STATUS_INITIAL and other.status != STATUS_INITIAL:
                    mine.status = STATUS_CANDIDATE
                    mine.level_q = 0
                    mine.done = True
                    mine.leader = False

    def _advance_epochs(self, agents: list[WorkAgent]) -> None:
        """Lines 7-15: CountUp, epoch advancement, group initialization."""
        # Line 7 is implicit: WorkAgent construction resets tick.
        count_up(agents, self.params)  # line 8
        for agent in agents:  # line 9 (min cap per D1)
            if agent.tick:
                agent.epoch = min(agent.epoch + 1, EPOCH_MAX)
        shared_epoch = max(agents[0].epoch, agents[1].epoch)  # line 10
        for agent in agents:  # lines 11-15
            agent.epoch = shared_epoch
            if shared_epoch > agent.epoch_at_entry:
                self._enter_epoch(agent)
                agent.epoch_at_entry = shared_epoch  # `init <- epoch`

    def _enter_epoch(self, agent: WorkAgent) -> None:
        """Initialize the additional variables of the group just entered.

        Variables belonging to groups the agent has left become undefined
        again (``None``), which keeps the reachable state space at the
        Table 3 inventory (and the Lemma 3 audit honest).
        """
        if not agent.in_v_a:
            return  # V_B keeps its count; V_X cannot advance epochs.
        agent.level_q = None
        agent.done = None
        agent.rand = None
        agent.index = None
        agent.level_b = None
        if agent.epoch in (2, 3):  # line 12
            agent.rand = 0
            agent.index = 0
        elif agent.epoch == EPOCH_MAX:  # line 13
            agent.level_b = 0

    def _run_module(self, agents: list[WorkAgent]) -> None:
        """Lines 16-22: dispatch on the (now shared) epoch."""
        epoch = agents[0].epoch
        if epoch == 1:
            if self.variant != "backup-only":
                quick_elimination(agents, self.params)
        elif epoch in (2, 3):
            if self.variant == "full":
                tournament(agents, self.params)
        else:
            backup(agents, self.params)
