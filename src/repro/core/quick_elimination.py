"""QuickElimination() — Algorithm 3: the lottery on geometric levels.

Each leader plays the competition game of Section 3.1.1: it flips a fair
coin per interaction with a follower — "head" when it is the initiator —
counting heads in ``levelQ`` until the first tail sets ``done``.  Agents in
``V_A`` that have stopped (``done``) run a one-way epidemic of the maximum
``levelQ``; a leader observing a larger value becomes a follower.

Coin flips are fair *and mutually independent* because at most one flip
happens per interaction (a flip needs a leader–follower pair, and the two
roles of one interaction cannot both be flipping leaders).

Survivor-count law (Lemma 7): for every ``i >= 2``, the probability that
exactly ``i`` leaders survive is at most ``2^(1-i)`` (plus an ``O(1/n)``
failure term); the maximum-level leader always survives, so the module can
never eliminate all leaders.
"""

from __future__ import annotations

from repro.core.params import PLLParameters
from repro.core.state import WorkAgent

__all__ = ["quick_elimination"]


def quick_elimination(agents: list[WorkAgent], params: PLLParameters) -> None:
    """Apply Algorithm 3 to an interacting pair (in place).

    Only called when the shared epoch is 1, so ``V_A`` agents carry
    ``levelQ``/``done``.  The ``i = 0`` branch of line 36 uses a ``min``
    cap (DESIGN.md D1): ``levelQ`` saturates at ``lmax``.
    """
    # Lines 35-38: the coin flip.  `i` is the agent's role: 0 = initiator
    # (head), 1 = responder (tail).  Only a still-playing leader facing a
    # follower flips; the two guards are mutually exclusive since a leader
    # is never in V_F.
    for i in (0, 1):
        mine, other = agents[i], agents[1 - i]
        if mine.leader and not other.leader and mine.done is False:
            if i == 0:
                mine.level_q = min(mine.level_q + 1, params.lmax)
            else:
                mine.done = True
    # Lines 39-42: one-way epidemic of the maximum levelQ among stopped
    # V_A agents; the smaller side adopts the value and drops out.
    first, second = agents
    if first.in_v_a and second.in_v_a and first.done and second.done:
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.level_q < other.level_q:
                mine.leader = False
                mine.level_q = other.level_q
