"""BackUp() — Algorithm 5: tick-paced levels plus pairwise election.

The unconditional safety net: elects a unique leader from *any* reachable
configuration.  A leader gets one coin-flip opportunity per tick (i.e. once
per synchronized color change, every Theta(log n) parallel time): if it
initiates an interaction with a follower while its tick is raised, it
increments ``levelB`` (capped at ``lmax``).  The maximum ``levelB`` spreads
through ``V_A`` by one-way epidemic and demotes smaller-valued leaders —
halving (in expectation) the leader count per level — and, as a final
resort, two equal-level leaders meeting directly resolve by demoting the
responder (the [Ang+06] election rule, line 58).

From ``B_start`` this elects a unique leader within ``O(log^2 n)`` expected
parallel time (Lemma 12); from an arbitrary configuration, within ``O(n)``
(Lemma 10) — the path that guarantees correctness with probability 1 even
when synchronization has failed.
"""

from __future__ import annotations

from repro.core.params import PLLParameters
from repro.core.state import WorkAgent

__all__ = ["backup"]


def backup(agents: list[WorkAgent], params: PLLParameters) -> None:
    """Apply Algorithm 5 to an interacting pair (in place).

    Only called when the shared epoch is 4, so ``V_A`` agents carry
    ``levelB``.  Line 52's cap is ``min`` (DESIGN.md D1).
    """
    initiator, responder = agents
    # Lines 51-53: the tick-paced coin flip.  Only the initiator role
    # counts as "head"; being a responder with a raised tick is the tail
    # and does nothing.
    if initiator.tick and initiator.leader and not responder.leader:
        initiator.level_b = min(initiator.level_b + 1, params.lmax)
    # Lines 54-57: epidemic of the maximum levelB over V_A; the smaller
    # side adopts the value and is demoted.
    if initiator.in_v_a and responder.in_v_a:
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.level_b < other.level_b:
                mine.level_b = other.level_b
                mine.leader = False
    # Line 58: two surviving leaders necessarily have equal levelB here;
    # the responder concedes ([Ang+06] pairwise election).
    if initiator.leader and responder.leader:
        responder.leader = False
