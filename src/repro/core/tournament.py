"""Tournament() — Algorithm 4: uniform nonces and a max-nonce epidemic.

Each leader assembles a ``Phi``-bit uniform random nonce in ``rand``, one
bit per interaction with a follower (the bit is its interaction role), with
``index`` counting assembled bits.  Once assembled, the maximum nonce
spreads through ``V_A`` by one-way epidemic and leaders holding a smaller
nonce are eliminated.  The module runs twice (epochs 2 and 3, with
``rand``/``index`` re-initialized at the boundary), which squares its
failure probability: each round leaves more than one leader with
probability ``O(log log n / log^(2/3) n)`` (Lemma 8).

Faithfulness note (DESIGN.md D3): as printed, only leaders advance
``index``, yet the epidemic of line 47 requires *both* parties to have
``index = Phi`` — followers could then never relay the max nonce and the
epidemic could not cover ``V_A`` as Lemma 8's proof requires.  We let every
``V_A`` agent advance ``index`` on the same trigger (partner is a
follower); only leaders record bits, so a follower's ``rand`` is always a
value received from the epidemic (hence never exceeds the maximum leader
nonce, preserving "never eliminates all leaders").
"""

from __future__ import annotations

from repro.core.params import PLLParameters
from repro.core.state import WorkAgent

__all__ = ["tournament"]


def tournament(agents: list[WorkAgent], params: PLLParameters) -> None:
    """Apply Algorithm 4 to an interacting pair (in place).

    Only called when the shared epoch is 2 or 3, so ``V_A`` agents carry
    ``rand``/``index``.  Line 45's cap is ``min`` (DESIGN.md D1).
    """
    phi = params.phi
    # Lines 43-46 (+D3): assemble nonce bits.  `i` is the agent's role
    # (0 = initiator, 1 = responder) and doubles as the appended bit.
    for i in (0, 1):
        mine, other = agents[i], agents[1 - i]
        if mine.in_v_a and not other.leader and mine.index < phi:
            if mine.leader:
                mine.rand = 2 * mine.rand + i
            mine.index = min(mine.index + 1, phi)
    # Lines 47-50: epidemic of the maximum nonce among finished V_A agents.
    first, second = agents
    if first.in_v_a and second.in_v_a and first.index == phi and second.index == phi:
        for i in (0, 1):
            mine, other = agents[i], agents[1 - i]
            if mine.rand < other.rand:
                mine.leader = False
                mine.rand = other.rand
