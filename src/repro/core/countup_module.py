"""CountUp() — Algorithm 2: count-up timers and the color epidemic.

Timer agents (``V_B``) increment ``count`` modulo ``cmax`` at every
interaction; a rollover advances the agent's ``color`` modulo 3 and raises
its ``tick``.  Independently, an agent whose partner shows the *next* color
(cyclically) adopts it, raises its ``tick``, and — if it is itself a timer —
resets its ``count``.  Ticks drive epoch advancement in Algorithm 1 and the
coin-flip schedule of BackUp.
"""

from __future__ import annotations

from repro.core.params import PLLParameters
from repro.core.state import WorkAgent

__all__ = ["count_up"]


def count_up(agents: list[WorkAgent], params: PLLParameters) -> None:
    """Apply Algorithm 2 to an interacting pair (in place)."""
    cmax = params.cmax
    # Lines 23-29: every timer counts the interaction; rollover = new color.
    for agent in agents:
        if agent.in_v_b:
            agent.count = (agent.count + 1) % cmax
            if agent.count == 0:
                agent.color = (agent.color + 1) % 3
                agent.tick = True
    # Lines 30-34: one-way epidemic of the newer color.  At most one of the
    # two directions can match: colors differing by exactly 1 both ways
    # would need 2 == 0 (mod 3).  After an adoption the colors are equal,
    # so the second iteration cannot fire spuriously.
    for i in (0, 1):
        mine, other = agents[i], agents[1 - i]
        if other.color == (mine.color + 1) % 3:
            mine.color = other.color
            mine.tick = True
            if mine.in_v_b:
                mine.count = 0
