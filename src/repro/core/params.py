"""Protocol parameters for PLL.

PLL is non-uniform: it takes a rough knowledge ``m`` of the population size
``n`` with ``m >= log2(n)`` and ``m = Theta(log n)`` (Section 1).  All of
the protocol's constants derive from ``m`` (Algorithm 1, Notations):

* ``lmax = 5 m``   — cap on ``levelQ`` and ``levelB``,
* ``cmax = 41 m``  — count-up timer period,
* ``Phi = ceil((2/3) * lg m)`` — bits per Tournament nonce.

The ``2/3`` exponent is what keeps the state count at ``O(log n)``: an
agent in ``V_A ∩ (V_2 ∪ V_3)`` stores both ``rand`` (``2^Phi`` values) and
``index`` (``Phi + 1`` values), and ``2^Phi * Phi = O(m^(2/3) log m)``
is ``O(log n)`` (Lemma 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["PLLParameters"]


@dataclass(frozen=True)
class PLLParameters:
    """The input ``m`` and the constants PLL derives from it."""

    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ParameterError(f"m must be a positive integer, got {self.m}")

    @classmethod
    def for_population(cls, n: int, slack: float = 1.0) -> "PLLParameters":
        """Parameters for a population of ``n`` agents.

        Chooses ``m = ceil(slack * log2 n)`` (at least 1), satisfying the
        paper's requirement ``m >= log2 n`` for ``slack >= 1``.  ``slack``
        models the roughness of the knowledge of ``n``: the paper only asks
        for ``m = Theta(log n)``, so over-estimates are legal and their cost
        is explored by the ablation experiment E12.
        """
        if n < 2:
            raise ParameterError(f"population size must be at least 2, got {n}")
        if slack < 1.0:
            raise ParameterError(
                f"slack must be >= 1 so that m >= log2(n); got {slack}"
            )
        return cls(m=max(1, math.ceil(slack * math.log2(n))))

    def validate_for(self, n: int) -> None:
        """Check ``m >= log2(n)`` (raises otherwise).

        The paper's guarantee is stated under this assumption; running with
        a too-small ``m`` keeps correctness (BackUp is unconditional) but
        voids the ``O(log n)`` bound, so experiments call this first.
        """
        if n >= 2 and self.m < math.log2(n) - 1e-12:
            raise ParameterError(
                f"m={self.m} violates m >= log2(n) for n={n} "
                f"(need m >= {math.log2(n):.2f})"
            )

    @property
    def lmax(self) -> int:
        """Cap on ``levelQ`` and ``levelB``: ``5 m``."""
        return 5 * self.m

    @property
    def cmax(self) -> int:
        """Count-up timer period: ``41 m``."""
        return 41 * self.m

    @property
    def phi(self) -> int:
        """Tournament nonce length in bits: ``ceil((2/3) lg m)``."""
        if self.m == 1:
            return 0
        return math.ceil((2.0 / 3.0) * math.log2(self.m))

    @property
    def rand_space(self) -> int:
        """Number of possible Tournament nonces: ``2^Phi``."""
        return 1 << self.phi

    def state_bound(self) -> int:
        """Upper bound on the number of agent states (Lemma 3 audit).

        Counts, per group, the product of that group's variable domains
        (``tick`` is not stored — DESIGN.md D2 — and ``init`` always equals
        ``epoch`` between interactions — DESIGN.md D6):

        * common factor: ``leader(2) * color(3) * epoch(4)``,
        * ``V_X``: the single initial state,
        * ``V_B``: ``cmax`` counts (always follower),
        * ``V_A ∩ V_1``: ``(lmax + 1) * 2`` for (levelQ, done),
        * ``V_A ∩ (V_2 ∪ V_3)``: ``2^Phi * (Phi + 1)`` for (rand, index),
        * ``V_A ∩ V_4``: ``lmax + 1`` for levelB.

        The bound is deliberately loose (epoch/group combinations overlap);
        what matters for Lemma 3 is that it is ``O(m) = O(log n)``.
        """
        common = 2 * 3  # leader x color; epoch folded into the group terms
        v_b = 3 * 4 * self.cmax
        v_a_1 = common * (self.lmax + 1) * 2
        v_a_23 = common * 2 * self.rand_space * (self.phi + 1)
        v_a_4 = common * (self.lmax + 1)
        return 1 + v_b + v_a_1 + v_a_23 + v_a_4
