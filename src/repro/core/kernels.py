"""Compiled field kernels for PLL and its symmetric variant.

This module lowers Algorithm 1 (and the Section 4 symmetric variant) to
the struct-of-arrays form consumed by :mod:`repro.engine.kernel`: every
Table 3 variable becomes one packed integer field, and the transition is
re-expressed as masked NumPy array ops over those field columns — one
vectorized call resolves whole arrays of (initiator, responder) pairs
with no Python ``delta`` in the loop.

The lowering mirrors the imperative modules (:mod:`repro.core.pll`,
:mod:`repro.core.symmetric`, :mod:`repro.core.countup_module`,
:mod:`repro.core.quick_elimination`, :mod:`repro.core.tournament`,
:mod:`repro.core.backup`) statement by statement.  Where the Python code
updates the two agents sequentially inside one interaction, the masks
here evaluate against a pre-update snapshot; each such spot is exact for
the same mutual-exclusivity reason the scalar code already documents
(e.g. color adoption cannot fire both ways — ``2 != 0 (mod 3)`` — and
one-way epidemics compare with strict ``<``, so at most one side ever
updates).  Exact agreement with the Python ``transition`` over both
exhaustive small-domain pairs and randomized wide-domain samples is
pinned by ``tests/engine/test_kernel.py``.

Field packing (shared by both variants):

========  =======================  =========================
field     domain                   packed encoding
========  =======================  =========================
leader    bool                     0 / 1
status    X, Y, A, B               0 / 1 / 2 / 3
epoch     1..4                     value - 1
color     0..2                     identity
count     None or 0..cmax-1        0 = None, else value + 1
level_q   None or 0..lmax          0 = None, else value + 1
done      None / False / True      0 / 1 / 2
rand      None or 0..2^Phi - 1     0 = None, else value + 1
index     None or 0..Phi           0 = None, else value + 1
level_b   None or 0..lmax          0 = None, else value + 1
coin      None, J, K, F0, F1       0 / 1 / 2 / 3 / 4
duel      None / 0 / 1             0 / 1 / 2
========  =======================  =========================

Inside the deltas the fields travel in *semantic* form (``None`` is -1,
``done``/``duel`` are -1/0/1, ``epoch`` is 1..4); :func:`_unpack` /
:func:`_pack` convert at the boundary.
"""

from __future__ import annotations

import numpy as np

from repro.coins.symmetric_coin import COIN_STATUSES
from repro.core.params import PLLParameters
from repro.core.state import (
    EPOCH_MAX,
    STATUS_CANDIDATE,
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_TIMER,
    PLLState,
)
from repro.engine.kernel.spec import Field, FieldColumns, KernelSpec

__all__ = ["pll_kernel_spec", "symmetric_pll_kernel_spec"]

#: Packed status codes (shared with the samplers and tests).
SX, SY, SA, SB = 0, 1, 2, 3
_STATUS_NAMES = (
    STATUS_INITIAL,
    STATUS_INITIAL_ALT,
    STATUS_CANDIDATE,
    STATUS_TIMER,
)
_STATUS_CODES = {name: code for code, name in enumerate(_STATUS_NAMES)}

#: Packed coin codes: 0 = None, then J, K, F0 (head), F1 (tail).
_COIN_NAMES = (None, *COIN_STATUSES)
_COIN_CODES = {name: code for code, name in enumerate(_COIN_NAMES)}
_CN_J, _CN_K, _CN_HEAD, _CN_TAIL = 1, 2, 3, 4

#: Follower/follower coin pairing (symmetric_coin.pair_coins) as two
#: 5 x 5 lookup tables over packed coin codes; identity off the rules.
_COIN_PAIR0 = np.arange(5, dtype=np.int64).repeat(5).reshape(5, 5).copy()
_COIN_PAIR1 = np.tile(np.arange(5, dtype=np.int64), (5, 1)).copy()
_COIN_PAIR0[_CN_J, _CN_J] = _CN_K
_COIN_PAIR1[_CN_J, _CN_J] = _CN_K
_COIN_PAIR0[_CN_K, _CN_K] = _CN_J
_COIN_PAIR1[_CN_K, _CN_K] = _CN_J
_COIN_PAIR0[_CN_J, _CN_K] = _CN_HEAD
_COIN_PAIR1[_CN_J, _CN_K] = _CN_TAIL
_COIN_PAIR0[_CN_K, _CN_J] = _CN_TAIL
_COIN_PAIR1[_CN_K, _CN_J] = _CN_HEAD


def _fields(params: PLLParameters) -> tuple[Field, ...]:
    return (
        Field("leader", 2),
        Field("status", 4),
        Field("epoch", EPOCH_MAX),
        Field("color", 3),
        Field("count", params.cmax + 1),
        Field("level_q", params.lmax + 2),
        Field("done", 3),
        Field("rand", params.rand_space + 1),
        Field("index", params.phi + 2),
        Field("level_b", params.lmax + 2),
        Field("coin", 5),
        Field("duel", 3),
    )


def _to_fields(state: PLLState) -> tuple[int, ...]:
    return (
        1 if state.leader else 0,
        _STATUS_CODES[state.status],
        state.epoch - 1,
        state.color,
        0 if state.count is None else state.count + 1,
        0 if state.level_q is None else state.level_q + 1,
        0 if state.done is None else (2 if state.done else 1),
        0 if state.rand is None else state.rand + 1,
        0 if state.index is None else state.index + 1,
        0 if state.level_b is None else state.level_b + 1,
        _COIN_CODES[state.coin],
        0 if state.duel is None else state.duel + 1,
    )


def _from_fields(values) -> PLLState:
    (leader, status, epoch, color, count, level_q, done, rand, index,
     level_b, coin, duel) = values
    return PLLState(
        leader=bool(leader),
        status=_STATUS_NAMES[status],
        epoch=int(epoch) + 1,
        color=int(color),
        count=None if count == 0 else int(count) - 1,
        level_q=None if level_q == 0 else int(level_q) - 1,
        done=None if done == 0 else done == 2,
        rand=None if rand == 0 else int(rand) - 1,
        index=None if index == 0 else int(index) - 1,
        level_b=None if level_b == 0 else int(level_b) - 1,
        coin=_COIN_NAMES[coin],
        duel=None if duel == 0 else int(duel) - 1,
    )


def _unpack(cols: FieldColumns) -> dict[str, np.ndarray]:
    """Packed columns -> semantic columns (None = -1, epoch = 1..4)."""
    return {
        "L": cols["leader"],
        "S": cols["status"],
        "E": cols["epoch"] + 1,
        "C": cols["color"],
        "cnt": cols["count"] - 1,
        "lq": cols["level_q"] - 1,
        "dn": cols["done"] - 1,
        "rd": cols["rand"] - 1,
        "ix": cols["index"] - 1,
        "lb": cols["level_b"] - 1,
        "cn": cols["coin"],
        "du": cols["duel"] - 1,
    }


def _pack(side: dict[str, np.ndarray]) -> FieldColumns:
    return {
        "leader": side["L"],
        "status": side["S"],
        "epoch": side["E"] - 1,
        "color": side["C"],
        "count": side["cnt"] + 1,
        "level_q": side["lq"] + 1,
        "done": side["dn"] + 1,
        "rand": side["rd"] + 1,
        "index": side["ix"] + 1,
        "level_b": side["lb"] + 1,
        "coin": side["cn"],
        "duel": side["du"] + 1,
    }


def _put(side: dict[str, np.ndarray], mask: np.ndarray, **updates) -> None:
    """Masked assignment of scalars/arrays into semantic columns."""
    for key, value in updates.items():
        side[key] = np.where(mask, value, side[key])


def _count_up(
    A: dict, B: dict, tick0: np.ndarray, tick1: np.ndarray, cmax: int
) -> None:
    """Algorithm 2 over columns (see countup_module for the scalar form)."""
    for side, tick in ((A, tick0), (B, tick1)):
        in_b = side["S"] == SB
        bumped = (side["cnt"] + 1) % cmax
        roll = in_b & (bumped == 0)
        side["cnt"] = np.where(in_b, bumped, side["cnt"])
        side["C"] = np.where(roll, (side["C"] + 1) % 3, side["C"])
        tick |= roll
    # One-way color epidemic.  Both directions are evaluated against the
    # post-rollover snapshot: they cannot both hold (2 != 0 mod 3), and
    # after an adoption the scalar loop's second check is vacuous, so
    # the snapshot evaluation is exact.
    color0, color1 = A["C"], B["C"]
    adopt0 = color1 == (color0 + 1) % 3
    adopt1 = color0 == (color1 + 1) % 3
    A["C"] = np.where(adopt0, color1, color0)
    B["C"] = np.where(adopt1, color0, color1)
    tick0 |= adopt0
    tick1 |= adopt1
    A["cnt"] = np.where(adopt0 & (A["S"] == SB), 0, A["cnt"])
    B["cnt"] = np.where(adopt1 & (B["S"] == SB), 0, B["cnt"])


def _advance_epochs(
    A: dict,
    B: dict,
    tick0: np.ndarray,
    tick1: np.ndarray,
    entry0: np.ndarray,
    entry1: np.ndarray,
    symmetric: bool,
) -> np.ndarray:
    """Lines 9-15: tick-driven advance, sharing, group initialization."""
    A["E"] = np.where(tick0, np.minimum(A["E"] + 1, EPOCH_MAX), A["E"])
    B["E"] = np.where(tick1, np.minimum(B["E"] + 1, EPOCH_MAX), B["E"])
    shared = np.maximum(A["E"], B["E"])
    for side, entry in ((A, entry0), (B, entry1)):
        side["E"] = shared
        enter = (shared > entry) & (side["S"] == SA)
        _put(side, enter, lq=-1, dn=-1, rd=-1, ix=-1, lb=-1)
        if symmetric:
            _put(side, enter, du=-1)
            first = enter & (shared == 1)
            side["lq"] = np.where(first, 0, side["lq"])
            side["dn"] = np.where(
                first, np.where(side["L"] == 1, 0, 1), side["dn"]
            )
        grouped = enter & ((shared == 2) | (shared == 3))
        _put(side, grouped, rd=0, ix=0)
        last = enter & (shared == EPOCH_MAX)
        side["lb"] = np.where(last, 0, side["lb"])
        if symmetric:
            side["du"] = np.where(last & (side["L"] == 1), 0, side["du"])
    return shared


def _backup_epidemic(A: dict, B: dict, ep4: np.ndarray, demote) -> None:
    """Lines 54-57 (max-levelB epidemic) shared by both variants."""
    epidemic = ep4 & (A["S"] == SA) & (B["S"] == SA)
    level0, level1 = A["lb"], B["lb"]
    lower0 = epidemic & (level0 < level1)
    lower1 = epidemic & (level1 < level0)
    A["lb"] = np.where(lower0, level1, level0)
    B["lb"] = np.where(lower1, level0, level1)
    demote(A, lower0)
    demote(B, lower1)


def pll_kernel_spec(params: PLLParameters, variant: str = "full") -> KernelSpec:
    """Compiled lowering of Algorithm 1 (asymmetric PLL, all variants)."""
    cmax, lmax, phi = params.cmax, params.lmax, params.phi
    do_quick = variant != "backup-only"
    do_tournament = variant == "full"

    def delta(a: FieldColumns, b: FieldColumns):
        A, B = _unpack(a), _unpack(b)
        tick0 = np.zeros(A["L"].shape, dtype=bool)
        tick1 = np.zeros(B["L"].shape, dtype=bool)
        entry0, entry1 = A["E"].copy(), B["E"].copy()

        # -- lines 1-6: status assignment -------------------------------
        status0, status1 = A["S"].copy(), B["S"].copy()
        both_initial = (status0 == SX) & (status1 == SX)
        _put(A, both_initial, S=SA, lq=0, dn=0, L=1)
        _put(B, both_initial, S=SB, cnt=0, L=0)
        late0 = ~both_initial & (status0 == SX) & (status1 != SX)
        _put(A, late0, S=SA, lq=0, dn=1, L=0)
        late1 = ~both_initial & (status1 == SX) & (status0 != SX)
        _put(B, late1, S=SA, lq=0, dn=1, L=0)

        # -- lines 7-15: CountUp, epochs, group initialization ----------
        _count_up(A, B, tick0, tick1, cmax)
        shared = _advance_epochs(
            A, B, tick0, tick1, entry0, entry1, symmetric=False
        )
        ep1 = shared == 1
        ep23 = (shared == 2) | (shared == 3)
        ep4 = shared == EPOCH_MAX

        # -- lines 16-22: module dispatch -------------------------------
        if do_quick:
            # QuickElimination flips (lines 35-38): the two guards are
            # mutually exclusive (a leader is never facing a leader in
            # either), so snapshot evaluation is exact.
            flip0 = ep1 & (A["L"] == 1) & (B["L"] == 0) & (A["dn"] == 0)
            A["lq"] = np.where(
                flip0, np.minimum(A["lq"] + 1, lmax), A["lq"]
            )
            flip1 = ep1 & (B["L"] == 1) & (A["L"] == 0) & (B["dn"] == 0)
            B["dn"] = np.where(flip1, 1, B["dn"])
            # Max-levelQ epidemic (lines 39-42), post-flip values.
            epidemic = (
                ep1
                & (A["S"] == SA)
                & (B["S"] == SA)
                & (A["dn"] == 1)
                & (B["dn"] == 1)
            )
            level0, level1 = A["lq"], B["lq"]
            lower0 = epidemic & (level0 < level1)
            lower1 = epidemic & (level1 < level0)
            _put(A, lower0, L=0, lq=level1)
            _put(B, lower1, L=0, lq=level0)
        if do_tournament:
            # Nonce assembly (lines 43-46 + D3): the appended bit is the
            # agent's role, indices advance for every V_A party.
            bits0 = ep23 & (A["S"] == SA) & (B["L"] == 0) & (A["ix"] < phi)
            A["rd"] = np.where(bits0 & (A["L"] == 1), 2 * A["rd"], A["rd"])
            A["ix"] = np.where(
                bits0, np.minimum(A["ix"] + 1, phi), A["ix"]
            )
            bits1 = ep23 & (B["S"] == SA) & (A["L"] == 0) & (B["ix"] < phi)
            B["rd"] = np.where(
                bits1 & (B["L"] == 1), 2 * B["rd"] + 1, B["rd"]
            )
            B["ix"] = np.where(
                bits1, np.minimum(B["ix"] + 1, phi), B["ix"]
            )
            # Max-nonce epidemic (lines 47-50), post-assembly values.
            epidemic = (
                ep23
                & (A["S"] == SA)
                & (B["S"] == SA)
                & (A["ix"] == phi)
                & (B["ix"] == phi)
            )
            nonce0, nonce1 = A["rd"], B["rd"]
            lower0 = epidemic & (nonce0 < nonce1)
            lower1 = epidemic & (nonce1 < nonce0)
            _put(A, lower0, L=0, rd=nonce1)
            _put(B, lower1, L=0, rd=nonce0)
        # BackUp (lines 51-58) runs in every variant.
        bump = ep4 & tick0 & (A["L"] == 1) & (B["L"] == 0)
        A["lb"] = np.where(bump, np.minimum(A["lb"] + 1, lmax), A["lb"])

        def demote(side, mask):
            side["L"] = np.where(mask, 0, side["L"])

        _backup_epidemic(A, B, ep4, demote)
        # Line 58: two surviving leaders, the responder concedes.
        final = ep4 & (A["L"] == 1) & (B["L"] == 1)
        B["L"] = np.where(final, 0, B["L"])
        return _pack(A), _pack(B)

    return KernelSpec(
        fields=_fields(params),
        to_fields=_to_fields,
        from_fields=_from_fields,
        delta=delta,
        features={
            "leader": lambda cols: cols["leader"],
            "epoch": lambda cols: cols["epoch"] + 1,
            "role": lambda cols: cols["status"],
        },
        sample_states=lambda rng, count: _sample_states(
            params, rng, count, symmetric=False
        ),
        cache_key=("pll", params.m, variant),
    )


def symmetric_pll_kernel_spec(params: PLLParameters) -> KernelSpec:
    """Compiled lowering of the Section 4 symmetric variant."""
    cmax, lmax, phi = params.cmax, params.lmax, params.phi

    def demote(side, mask):
        """_demote over columns: only live leaders change anything."""
        live = mask & (side["L"] == 1)
        _put(side, live, L=0, cn=_CN_J, du=-1)

    def delta(a: FieldColumns, b: FieldColumns):
        A, B = _unpack(a), _unpack(b)
        tick0 = np.zeros(A["L"].shape, dtype=bool)
        tick1 = np.zeros(B["L"].shape, dtype=bool)
        entry0, entry1 = A["E"].copy(), B["E"].copy()

        # -- role-free status assignment --------------------------------
        status0, status1 = A["S"].copy(), B["S"].copy()
        unassigned0 = (status0 == SX) | (status0 == SY)
        unassigned1 = (status1 == SX) | (status1 == SY)
        both_x = (status0 == SX) & (status1 == SX)
        both_y = (status0 == SY) & (status1 == SY)
        A["S"] = np.where(both_x, SY, np.where(both_y, SX, A["S"]))
        B["S"] = np.where(both_x, SY, np.where(both_y, SX, B["S"]))
        mixed_xy = (status0 == SX) & (status1 == SY)
        mixed_yx = (status0 == SY) & (status1 == SX)
        # The X party becomes the candidate (group init forced via
        # entry = 0), the Y party the timer (demoted, coin born J).
        _put(A, mixed_xy, S=SA)
        _put(B, mixed_xy, S=SB, cnt=0)
        demote(B, mixed_xy)
        _put(B, mixed_yx, S=SA)
        _put(A, mixed_yx, S=SB, cnt=0)
        demote(A, mixed_yx)
        join0 = unassigned0 & ~unassigned1
        _put(A, join0, S=SA)
        demote(A, join0)
        join1 = unassigned1 & ~unassigned0
        _put(B, join1, S=SA)
        demote(B, join1)
        entry0 = np.where(mixed_xy | join0, 0, entry0)
        entry1 = np.where(mixed_yx | join1, 0, entry1)

        # -- CountUp, epochs (epoch-1 entry included) -------------------
        _count_up(A, B, tick0, tick1, cmax)
        shared = _advance_epochs(
            A, B, tick0, tick1, entry0, entry1, symmetric=True
        )
        ep1 = shared == 1
        ep23 = (shared == 2) | (shared == 3)
        ep4 = shared == EPOCH_MAX

        # -- follower coins ---------------------------------------------
        churn = (
            (A["L"] == 0)
            & (B["L"] == 0)
            & (A["cn"] > 0)
            & (B["cn"] > 0)
        )
        coin0, coin1 = A["cn"], B["cn"]
        pair_slot = coin0 * 5 + coin1
        A["cn"] = np.where(churn, _COIN_PAIR0.ravel().take(pair_slot), coin0)
        B["cn"] = np.where(churn, _COIN_PAIR1.ravel().take(pair_slot), coin1)

        # -- QuickElimination (coin reads replace role bits) ------------
        for me, other in ((A, B), (B, A)):
            playing = (
                ep1
                & (me["L"] == 1)
                & (me["S"] == SA)
                & (other["L"] == 0)
                & (me["dn"] == 0)
            )
            me["lq"] = np.where(
                playing & (other["cn"] == _CN_HEAD),
                np.minimum(me["lq"] + 1, lmax),
                me["lq"],
            )
            me["dn"] = np.where(
                playing & (other["cn"] == _CN_TAIL), 1, me["dn"]
            )
        epidemic = (
            ep1
            & (A["S"] == SA)
            & (B["S"] == SA)
            & (A["dn"] == 1)
            & (B["dn"] == 1)
        )
        level0, level1 = A["lq"], B["lq"]
        lower0 = epidemic & (level0 < level1)
        lower1 = epidemic & (level1 < level0)
        A["lq"] = np.where(lower0, level1, level0)
        B["lq"] = np.where(lower1, level0, level1)
        demote(A, lower0)
        demote(B, lower1)

        # -- Tournament (both V_A parties may assemble at once) ---------
        for me, other in ((A, B), (B, A)):
            assembling = (
                ep23
                & (me["S"] == SA)
                & (other["L"] == 0)
                & (me["ix"] < phi)
                & (other["cn"] >= _CN_HEAD)
            )
            flip = (other["cn"] == _CN_HEAD).astype(np.int64)
            me["rd"] = np.where(
                assembling & (me["L"] == 1), 2 * me["rd"] + flip, me["rd"]
            )
            me["ix"] = np.where(
                assembling, np.minimum(me["ix"] + 1, phi), me["ix"]
            )
        epidemic = (
            ep23
            & (A["S"] == SA)
            & (B["S"] == SA)
            & (A["ix"] == phi)
            & (B["ix"] == phi)
        )
        nonce0, nonce1 = A["rd"], B["rd"]
        lower0 = epidemic & (nonce0 < nonce1)
        lower1 = epidemic & (nonce1 < nonce0)
        A["rd"] = np.where(lower0, nonce1, nonce0)
        B["rd"] = np.where(lower1, nonce0, nonce1)
        demote(A, lower0)
        demote(B, lower1)

        # -- BackUp (duel bits stand in for line 58, D7) ----------------
        for me, other, tick in ((A, B, tick0), (B, A, tick1)):
            reads = (
                ep4
                & (me["L"] == 1)
                & (me["S"] == SA)
                & (other["L"] == 0)
                & (other["cn"] >= _CN_HEAD)
            )
            flip = (other["cn"] == _CN_HEAD).astype(np.int64)
            me["du"] = np.where(reads, flip, me["du"])
            me["lb"] = np.where(
                reads & tick & (other["cn"] == _CN_HEAD),
                np.minimum(me["lb"] + 1, lmax),
                me["lb"],
            )
        _backup_epidemic(A, B, ep4, demote)
        duel0 = A["du"]  # snapshot: demoting A clears its duel bit
        dueling = (
            ep4
            & (A["L"] == 1)
            & (B["L"] == 1)
            & (A["S"] == SA)
            & (B["S"] == SA)
            & (duel0 != B["du"])
        )
        demote(A, dueling & (duel0 == 0))
        demote(B, dueling & (duel0 != 0))
        return _pack(A), _pack(B)

    return KernelSpec(
        fields=_fields(params),
        to_fields=_to_fields,
        from_fields=_from_fields,
        delta=delta,
        features={
            "leader": lambda cols: cols["leader"],
            "epoch": lambda cols: cols["epoch"] + 1,
            "role": lambda cols: cols["status"],
        },
        sample_states=lambda rng, count: _sample_states(
            params, rng, count, symmetric=True
        ),
        cache_key=("pll-symmetric", params.m),
    )


def _sample_states(
    params: PLLParameters,
    rng: np.random.Generator,
    count: int,
    symmetric: bool,
) -> list[PLLState]:
    """Well-formed states across every Table 3 group.

    Sampled states satisfy the stored-state invariants the Python
    transition is total on: group-consistent optional fields, capped
    levels, ``rand`` holding at most ``index`` assembled bits, symmetric
    followers carrying coins and epoch-4 symmetric leaders a duel bit.
    """
    lmax, cmax, phi = params.lmax, params.cmax, params.phi
    states: list[PLLState] = []
    groups = ("initial", "timer", "v1", "v23", "v4")
    for _ in range(count):
        group = groups[int(rng.integers(0, len(groups)))]
        epoch = int(rng.integers(1, EPOCH_MAX + 1))
        color = int(rng.integers(0, 3))
        if group == "initial":
            status = (
                STATUS_INITIAL_ALT
                if symmetric and rng.integers(0, 2)
                else STATUS_INITIAL
            )
            states.append(
                PLLState(
                    leader=True,
                    status=status,
                    # Asymmetric X agents convert on their first
                    # interaction, so their stored epoch is always 1;
                    # symmetric X/Y agents churn (and advance epochs)
                    # while waiting — conversion then forces group init
                    # via the zeroed entry surrogate.
                    epoch=epoch if symmetric else 1,
                    color=color,
                )
            )
            continue
        if group == "timer":
            coin = (
                COIN_STATUSES[int(rng.integers(0, 4))] if symmetric else None
            )
            states.append(
                PLLState(
                    leader=False,
                    status=STATUS_TIMER,
                    epoch=epoch,
                    color=color,
                    count=int(rng.integers(0, cmax)),
                    coin=coin,
                )
            )
            continue
        leader = bool(rng.integers(0, 2))
        coin = (
            None
            if leader or not symmetric
            else COIN_STATUSES[int(rng.integers(0, 4))]
        )
        common = dict(
            leader=leader, status=STATUS_CANDIDATE, color=color, coin=coin
        )
        if group == "v1":
            states.append(
                PLLState(
                    epoch=1,
                    level_q=int(rng.integers(0, lmax + 1)),
                    done=bool(rng.integers(0, 2)),
                    **common,
                )
            )
        elif group == "v23":
            index = int(rng.integers(0, phi + 1))
            states.append(
                PLLState(
                    epoch=int(rng.integers(2, 4)),
                    rand=int(rng.integers(0, 1 << index)),
                    index=index,
                    **common,
                )
            )
        else:
            duel = int(rng.integers(0, 2)) if symmetric and leader else None
            states.append(
                PLLState(
                    epoch=EPOCH_MAX,
                    level_b=int(rng.integers(0, lmax + 1)),
                    duel=duel,
                    **common,
                )
            )
    return states
