"""E6 — Lemma 7: the QuickElimination survivor-count law.

Lemma 7: in configuration ``C_{floor(21 n ln n)}`` of an execution from
the initial configuration, ``P(#leaders = i) < 2^(1-i) + eps_i`` for every
``i >= 2`` (``sum eps_i = O(1/n)``).

We run PLL to exactly that step, record the leader count, and compare the
empirical distribution with the ``2^(1-i)`` law — also checking that no run
ever eliminates every leader.
"""

from __future__ import annotations

import math

from repro.analysis.distributions import survivor_law_violations
from repro.analysis.stats import count_distribution
from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E6",
    title="QuickElimination survivor distribution",
    paper_artifact="Lemma 7",
    paper_claim="P(#leaders = i at step 21 n ln n) <= 2^(1-i) + eps_i, i >= 2",
    bench="benchmarks/bench_lemma7_quick.py",
)


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0, n: int = 128) -> ExperimentResult:
    trials = scaled([300], scale)[0]
    horizon = math.floor(21 * n * math.log(n))
    protocol = PLLProtocol.for_population(n)
    survivor_counts = []
    zero_leader_runs = 0
    for trial in range(trials):
        sim = AgentSimulator(protocol, n, seed=seed + trial)
        sim.run(horizon)
        leaders = sim.leader_count
        survivor_counts.append(leaders)
        if leaders == 0:
            zero_leader_runs += 1
    distribution = count_distribution(survivor_counts)
    violations = survivor_law_violations(distribution, trials)
    headers = ["#leaders i", "empirical P(i)", "bound 2^(1-i)", "consistent"]
    rows = []
    max_i = max(distribution)
    for i in range(1, max_i + 1):
        frequency = distribution.get(i, 0.0)
        bound = 2.0 ** (1 - i) if i >= 2 else 1.0
        rows.append(
            {
                "#leaders i": i,
                "empirical P(i)": frequency,
                "bound 2^(1-i)": bound if i >= 2 else "(none for i=1)",
                "consistent": i not in violations,
            }
        )
    notes = [
        f"n={n}, horizon = floor(21 n ln n) = {horizon} steps, {trials} trials",
        f"zero-leader runs: {zero_leader_runs} (must be 0)",
        f"law violations beyond 3 sigma: {violations or 'none'}",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
