"""E2 — consistency checks against Table 2 (lower bounds).

Lower bounds cannot be "reproduced" positively, but measurements must never
beat them.  Three checks:

* **[DS18]** — constant-space protocols need ``Omega(n)``: the measured
  time/n ratio of the 2-state Angluin protocol stays bounded away from 0.
* **[SM19]** — every protocol needs ``Omega(log n)``: PLL's measured
  time / lg n ratio stays bounded away from 0 across ``n``.
* **Coupon-collector floor** — since all agents start in the same (leader)
  state, stabilization cannot precede the first time all but one agent has
  interacted; we measure the coupon time ``~ (ln n) / 2`` alongside and
  confirm every trial respects the floor.
"""

from __future__ import annotations

import math

from repro.analysis.stats import summarize
from repro.core.pll import PLLProtocol
from repro.engine.metrics import InteractionCounter
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled
from repro.protocols.angluin import AngluinProtocol

SPEC = ExperimentSpec(
    id="E2",
    title="Lower-bound consistency",
    paper_artifact="Table 2",
    paper_claim=(
        "O(1) states => Omega(n) time [DS18]; any states => Omega(log n) "
        "time [SM19]"
    ),
    bench="benchmarks/bench_table2.py",
)


def _coupon_and_stabilization(n: int, seed: int) -> tuple[float, float]:
    """(coupon parallel time, stabilization parallel time) for one PLL run."""
    sim = AgentSimulator(PLLProtocol.for_population(n), n, seed=seed)
    counter = InteractionCounter(n)
    sim.add_hook(counter)
    coupon_steps = None
    while not counter.all_touched:
        sim.step()
    coupon_steps = sim.steps
    sim.remove_hook(counter)
    sim.run_until_stabilized()
    return coupon_steps / n, sim.parallel_time


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([10], scale)[0]
    headers = [
        "check",
        "n",
        "measured",
        "bound floor",
        "ratio measured/floor",
        "consistent",
    ]
    rows = []

    # [DS18]: Angluin's time/n ratio stays bounded below.
    for n in (32, 64, 128):
        times = []
        for trial in range(trials):
            sim = AgentSimulator(AngluinProtocol(), n, seed=seed + trial)
            sim.run_until_stabilized()
            times.append(sim.parallel_time)
        mean = summarize(times).mean
        # The exact expectation is ~ n/2 parallel time (sum over k of
        # n(n-1)/(k(k-1)) steps); any constant fraction of n passes.
        floor = n / 8
        rows.append(
            {
                "check": "[DS18] O(1)-state => Omega(n)",
                "n": n,
                "measured": mean,
                "bound floor": floor,
                "ratio measured/floor": mean / floor,
                "consistent": mean >= floor,
            }
        )

    # [SM19] + coupon floor on PLL.
    for n in (64, 256):
        coupon_times = []
        stab_times = []
        floor_respected = True
        for trial in range(trials):
            coupon, stabilization = _coupon_and_stabilization(n, seed + trial)
            coupon_times.append(coupon)
            stab_times.append(stabilization)
            if stabilization < coupon:
                floor_respected = False
        mean_stab = summarize(stab_times).mean
        floor = math.log2(n) / 4
        rows.append(
            {
                "check": "[SM19] any-state => Omega(log n)",
                "n": n,
                "measured": mean_stab,
                "bound floor": floor,
                "ratio measured/floor": mean_stab / floor,
                "consistent": mean_stab >= floor,
            }
        )
        rows.append(
            {
                "check": "coupon-collector floor (per trial)",
                "n": n,
                "measured": summarize(coupon_times).mean,
                "bound floor": "stab >= coupon",
                "ratio measured/floor": "",
                "consistent": floor_respected,
            }
        )
    notes = [
        "[Ali+17]'s bound (states < 1/2 lg lg n => near-linear time) has no "
        "implemented sub-lg-lg-n-state protocol to test against; recorded "
        "as not directly testable",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
