"""E8 — Lemma 12: BackUp elects a unique leader in O(log^2 n) from B_start.

Lemma 12: from any configuration in ``B_start`` (all agents in epoch 4,
all colors 0, ``levelB <= 1``), PLL reaches a unique leader within
``O(log^2 n)`` expected parallel time.

We *construct* ``B_start`` configurations with a chosen number ``k`` of
surviving leaders (the lemma must hold regardless of ``k``), load them
into the simulator, and measure stabilization.  The measured time should
grow with ``lg^2 n`` (flat ratio), be nearly independent of ``k`` (the
halving argument), and no run may ever eliminate all leaders.
"""

from __future__ import annotations

import math

from repro.analysis.stats import summarize
from repro.core.pll import PLLProtocol
from repro.core.state import PLLState, STATUS_CANDIDATE, STATUS_TIMER
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E8",
    title="BackUp from B_start: O(log^2 n) expected time",
    paper_artifact="Lemma 12",
    paper_claim="from B_start, unique leader within O(log^2 n) expected parallel time",
    bench="benchmarks/bench_lemma12_backup.py",
)


def b_start_configuration(n: int, leaders: int) -> list[PLLState]:
    """A ``B_start`` configuration: k leaders, half timers, rest followers.

    Shape follows Lemma 4's guarantees (``|V_A| >= n/2``, ``|V_B| >= 1``):
    ``n/2`` candidates (``k`` of them leaders, ``levelB = 0``) and ``n/2``
    timers with ``count = 0`` and color 0 — every agent in epoch 4.
    """
    candidates = n - n // 2
    if not 1 <= leaders <= candidates:
        raise ValueError(f"need 1 <= leaders <= {candidates}, got {leaders}")
    timer = PLLState(
        leader=False, status=STATUS_TIMER, epoch=4, color=0, count=0
    )
    follower = PLLState(
        leader=False, status=STATUS_CANDIDATE, epoch=4, color=0, level_b=0
    )
    leader = follower._replace(leader=True)
    return (
        [leader] * leaders
        + [follower] * (candidates - leaders)
        + [timer] * (n // 2)
    )


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([15], scale)[0]
    headers = [
        "n",
        "initial leaders k",
        "mean time (parallel)",
        "time / lg^2 n",
        "zero-leader runs",
    ]
    rows = []
    ratios: dict[int, list[float]] = {}
    for n in (64, 256):
        protocol = PLLProtocol.for_population(n)
        for k in sorted({2, 8, max(2, n // 8)}):
            times = []
            zero_leader_runs = 0
            for trial in range(trials):
                sim = AgentSimulator(protocol, n, seed=seed + trial)
                sim.load_configuration(b_start_configuration(n, k))
                sim.run_until_stabilized()
                times.append(sim.parallel_time)
                if sim.leader_count == 0:
                    zero_leader_runs += 1
            mean = summarize(times).mean
            ratio = mean / (math.log2(n) ** 2)
            ratios.setdefault(n, []).append(ratio)
            rows.append(
                {
                    "n": n,
                    "initial leaders k": k,
                    "mean time (parallel)": mean,
                    "time / lg^2 n": ratio,
                    "zero-leader runs": zero_leader_runs,
                }
            )
    notes = [
        f"{trials} trials per (n, k); flat time/lg^2 n across n and near-"
        "independence of k reproduce the halving argument",
        "k=1 is omitted (already stabilized at load time)",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
