"""E4 — Lemma 5: timers get a new color every O(log n) parallel time.

Lemma 5: in an execution from the initial configuration, each ``V_B``
agent gets a new color within ``O(log n)`` parallel time with high
probability (each color period costs a timer at most ``cmax = 41 m``
participations, i.e. ``~ 20.5 m`` parallel time, plus the epidemic).

We measure color-generation gaps on the isolated count-up timer protocol
(every agent a timer — the primitive in its purest form) and report the
largest observed gap in units of ``m ~ lg n``: a flat ratio across ``n``
is the lemma's shape.
"""

from __future__ import annotations

import math

from repro.core.params import PLLParameters
from repro.engine.simulator import AgentSimulator
from repro.experiments.hooks import ColorGenerationTracker
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled
from repro.sync.countup import CountUpTimerProtocol

SPEC = ExperimentSpec(
    id="E4",
    title="Count-up timers: color-change cadence",
    paper_artifact="Lemma 5",
    paper_claim="each V_B agent gets a new color within O(log n) parallel time whp",
    bench="benchmarks/bench_sync.py",
)

#: Number of color generations observed per run.
GENERATIONS = 3


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([20], scale)[0]
    headers = [
        "n",
        "m",
        "mean gap (parallel time)",
        "max gap (parallel time)",
        "max gap / m",
        "consistent (gap = O(m))",
    ]
    rows = []
    for n in (32, 128, 512):
        params = PLLParameters.for_population(n)
        protocol = CountUpTimerProtocol(cmax=params.cmax)
        gaps: list[float] = []
        for trial in range(trials):
            sim = AgentSimulator(protocol, n, seed=seed + trial)
            tracker = ColorGenerationTracker(n)
            sim.add_hook(tracker)
            budget = GENERATIONS * 30 * params.m * n
            sim.run(
                budget,
                until=lambda s, t=tracker: t.max_generation >= GENERATIONS,
                check_every=64,
            )
            # Gaps between consecutive global color starts (C_start events).
            reached = sorted(g for g in tracker.first_step if g > 0)
            steps = [tracker.first_step[g] for g in reached]
            previous = 0
            for step in steps:
                gaps.append((step - previous) / n)
                previous = step
        mean_gap = sum(gaps) / len(gaps)
        max_gap = max(gaps)
        ratio = max_gap / params.m
        rows.append(
            {
                "n": n,
                "m": params.m,
                "mean gap (parallel time)": mean_gap,
                "max gap (parallel time)": max_gap,
                "max gap / m": ratio,
                # cmax/2 = 20.5 m parallel time is the deterministic center;
                # allow a factor-2 whp envelope.
                "consistent (gap = O(m))": ratio < 41.0,
            }
        )
    notes = [
        f"{trials} runs per n, {GENERATIONS} color generations each; a gap "
        "is the parallel time between consecutive global first-arrivals at "
        "a new color (the paper's C_start events)",
        "the deterministic center is cmax/2 = 20.5 m parallel time per "
        "generation (each timer participates in ~2 interactions per unit)",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
