"""E12 — ablations of PLL's design choices, plus engine throughput.

Three design questions DESIGN.md calls out, made measurable:

* **What does each module buy?**  Compare the ``full``, ``no-tournament``
  and ``backup-only`` variants: removing Tournament leaves constant-
  probability ties to the ``O(log^2 n)`` BackUp; removing QuickElimination
  too makes every run pay the full BackUp schedule.
* **How rough may the size knowledge be?**  The paper allows any
  ``m = Theta(log n)`` with ``m >= log2 n``; over-estimating ``m`` slows
  the timers proportionally (time scales with ``cmax = 41 m``).
* **What do the engines cost?**  Steps/second of the agent-based and
  multiset engines on the same workload.
"""

from __future__ import annotations

import time

from repro.analysis.stats import summarize
from repro.core.params import PLLParameters
from repro.core.pll import PLLProtocol
from repro.engine.multiset import MultisetSimulator
from repro.engine.simulator import AgentSimulator
from repro.experiments.hooks import EpochEntryTracker
from repro.experiments.runner import stabilization_trials
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E12",
    title="Module, parameter, and engine ablations",
    paper_artifact="design choices (Sections 3.1-3.2)",
    paper_claim=(
        "QuickElimination + Tournament reduce expected time from O(log^2 n) "
        "to O(log n); any m = Theta(log n), m >= lg n works"
    ),
    bench="benchmarks/bench_ablations.py",
)

#: Module-ablation grid, shared with the E12 campaign builder (the
#: campaign covers only this stabilization-trial section; the m-slack and
#: engine-throughput sections are bespoke measurements).
MODULE_NS = (64, 256)
MODULE_VARIANTS = ("full", "no-tournament", "backup-only")
MODULE_TRIALS = 8


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([MODULE_TRIALS], scale)[0]
    headers = ["ablation", "setting", "n", "mean time (parallel)", "note"]
    rows = []

    # Module ablations.  The --trials override reaches this declarative
    # section only, so report its actual count separately from the
    # bespoke sections below.
    module_trials = trials
    for n in MODULE_NS:
        for variant in MODULE_VARIANTS:
            outcomes = stabilization_trials(
                "pll",
                n,
                trials,
                base_seed=seed,
                params={"variant": variant},
            )
            module_trials = len(outcomes)
            mean = summarize([o.parallel_time for o in outcomes]).mean
            rows.append(
                {
                    "ablation": "modules",
                    "setting": variant,
                    "n": n,
                    "mean time (parallel)": mean,
                    "note": "",
                }
            )

    # Size-knowledge slack.  Stabilization time only feels m on the slow
    # path (runs that must wait for Tournament/BackUp epochs), so the
    # clean observable is the first epoch advance — one full timer period,
    # deterministic-ish at cmax/2 = 20.5 m parallel time.
    n = 128
    for slack in (1.0, 2.0, 4.0):
        params = PLLParameters.for_population(n, slack=slack)
        first_ticks = []
        for trial in range(trials):
            sim = AgentSimulator(PLLProtocol(params), n, seed=seed + trial)
            tracker = EpochEntryTracker()
            sim.add_hook(tracker)
            sim.run(
                60 * params.m * n,
                until=lambda s, t=tracker: t.reached(2),
                check_every=16,
            )
            if tracker.reached(2):
                first_ticks.append(tracker.first_step[2] / n)
        mean_tick = summarize(first_ticks).mean
        rows.append(
            {
                "ablation": "m slack",
                "setting": f"m = {params.m} ({slack}x lg n)",
                "n": n,
                "mean time (parallel)": mean_tick,
                "note": f"first epoch advance; 20.5 m = {20.5 * params.m:.0f}",
            }
        )

    # Engine throughput.
    n = 1024
    budget = scaled([200000], scale)[0]
    for engine_name, engine_cls in (
        ("agent", AgentSimulator),
        ("multiset", MultisetSimulator),
    ):
        sim = engine_cls(PLLProtocol.for_population(n), n, seed=seed)
        started = time.perf_counter()
        sim.run(budget)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "ablation": "engine throughput",
                "setting": engine_name,
                "n": n,
                "mean time (parallel)": budget / elapsed,
                "note": "steps per second (higher is better)",
            }
        )
    notes = [
        f"{module_trials} trials per module row, {trials} per m-slack row",
        "module rows: expect full < no-tournament < backup-only in time",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
