"""E10 — Section 4: the symmetric variant and its coin construct.

Checks the three claims of Section 4: (1) the protocol is symmetric —
``T(p, p)`` always yields equal post-states — verified over every state
reached in simulation; (2) the ``J/K/F0/F1`` construct yields fair,
independent coin flips — verified by the exact ``#F0 == #F1`` invariant
along runs and by direct Monte-Carlo reads of the construct; (3) the
modification does not hurt the stabilization time asymptotically —
verified by time ratios against the asymmetric protocol.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.distributions import check_fair_coin
from repro.analysis.scaling import fit_scaling
from repro.analysis.stats import summarize
from repro.coins.symmetric_coin import COIN_J, coin_flip_value, pair_coins
from repro.core.invariants import check_coin_balance
from repro.core.pll import PLLProtocol
from repro.core.symmetric import SymmetricPLLProtocol
from repro.engine.protocol import check_symmetry
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E10",
    title="Symmetric PLL: symmetry, fair coins, matching time",
    paper_artifact="Section 4",
    paper_claim=(
        "PLL can be made symmetric; the J/K/F0/F1 construct gives totally "
        "independent and fair coin flips; asymptotic time is unaffected"
    ),
    bench="benchmarks/bench_symmetric.py",
)


def _coin_construct_reads(n: int, reads: int, seed: int) -> tuple[int, int]:
    """Monte-Carlo the bare construct: followers churn coins, one reader.

    Returns (heads, total settled reads).  Agent 0 is the reader (a
    'leader': its coin never participates); agents 1..n-1 are followers
    with coin statuses evolving under the pair rules.
    """
    rng = np.random.default_rng(seed)
    coins = [COIN_J] * n  # index 0 unused
    heads = 0
    settled_reads = 0
    while settled_reads < reads:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n - 1))
        v += v >= u
        if u == 0 or v == 0:
            partner = v if u == 0 else u
            value = coin_flip_value(coins[partner])
            if value is not None:
                settled_reads += 1
                heads += value
        else:
            coins[u], coins[v] = pair_coins(coins[u], coins[v])
    return heads, settled_reads


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([10], scale)[0]
    headers = ["check", "n", "measured", "expectation", "consistent"]
    rows = []

    # (3) the symmetric variant keeps the O(log n) asymptotics.  PLL's
    # time distribution is bimodal (QuickElimination either finishes the
    # job in a few lg n or the run waits for Tournament epochs), so the
    # robust check is the symmetric variant's *own* growth fit, with the
    # per-n ratio to the asymmetric protocol reported as context.
    ns = (32, 128, 512)
    sym_means = []
    for n in ns:
        asym_times = []
        sym_times = []
        balance_ok = True
        symmetry_ok = True
        for trial in range(trials):
            sim = AgentSimulator(
                PLLProtocol.for_population(n), n, seed=seed + trial
            )
            sim.run_until_stabilized()
            asym_times.append(sim.parallel_time)

            sym = AgentSimulator(
                SymmetricPLLProtocol.for_population(n), n, seed=seed + trial
            )
            sym.run_until_stabilized()
            sym_times.append(sym.parallel_time)
            try:
                check_coin_balance(sym.configuration())
                check_symmetry(sym.protocol, sym.interner.states())
            except Exception:  # recorded, not raised: this is a measurement
                balance_ok = symmetry_ok = False
        sym_mean = summarize(sym_times).mean
        sym_means.append(sym_mean)
        rows.append(
            {
                "check": "mean time symmetric (asymmetric in parens)",
                "n": n,
                "measured": f"{sym_mean:.4g} ({summarize(asym_times).mean:.4g})",
                "expectation": "both O(log n)",
                "consistent": "",
            }
        )
        rows.append(
            {
                "check": "symmetry property + #F0==#F1 at stabilization",
                "n": n,
                "measured": f"balance={balance_ok}, symmetric={symmetry_ok}",
                "expectation": "both hold",
                "consistent": balance_ok and symmetry_ok,
            }
        )
    sym_fit = fit_scaling(ns, sym_means, models=("log", "log^2", "linear"))
    rows.append(
        {
            "check": "symmetric growth fit",
            "n": f"{ns[0]}..{ns[-1]}",
            "measured": str(sym_fit),
            "expectation": "best model 'log'",
            "consistent": sym_fit.best.model == "log",
        }
    )

    # (2) direct fairness of the construct.
    reads = scaled([20000], scale)[0]
    heads, total = _coin_construct_reads(n=101, reads=reads, seed=seed)
    binomial = check_fair_coin(heads, total)
    rows.append(
        {
            "check": "coin construct head frequency",
            "n": 101,
            "measured": f"{binomial.frequency:.4f} (z={binomial.z_score:+.2f})",
            "expectation": "0.5 exactly (fair)",
            "consistent": binomial.consistent(),
        }
    )
    notes = [
        f"{trials} runs per n and {total} Monte-Carlo coin reads",
        "exact fairness follows from the #F0 == #F1 invariant; the z-score "
        "checks the empirical frequency against Binomial(reads, 1/2)",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
