"""Experiment specifications, results, and the registry.

Every reproduced paper artifact (table, lemma, theorem — see DESIGN.md §6)
is an *experiment*: a spec describing the paper's claim, a ``run``
function producing structured rows, and a rendered table matching what
EXPERIMENTS.md records.  Benchmarks call the same ``run`` functions at a
reduced ``scale`` so the two never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.tables import Table
from repro.errors import ExperimentError
from repro.orchestration.context import execution_context
from repro.orchestration.pool import ProgressCallback
from repro.orchestration.store import TrialStore

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata linking an experiment to the paper artifact it reproduces."""

    id: str  # e.g. "E9"
    title: str
    paper_artifact: str  # e.g. "Theorem 1"
    paper_claim: str
    bench: str  # the pytest-benchmark target regenerating it


@dataclass
class ExperimentResult:
    """Rows produced by one experiment run, plus provenance."""

    spec: ExperimentSpec
    headers: list[str]
    rows: list[dict]
    notes: list[str] = field(default_factory=list)
    scale: float = 1.0
    seed: int = 0

    def table(self) -> Table:
        return Table.from_records(self.headers, self.rows)

    def render(self) -> str:
        """Full plain-text report: header, claim, table, notes."""
        lines = [
            f"[{self.spec.id}] {self.spec.title}",
            f"paper artifact: {self.spec.paper_artifact}",
            f"paper claim:    {self.spec.paper_claim}",
            f"(scale={self.scale}, seed={self.seed})",
            "",
            self.table().render(),
        ]
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.headers:
            raise ExperimentError(f"no column {name!r} in experiment {self.spec.id}")
        return [row.get(name) for row in self.rows]


#: Registered experiments: id -> (spec, run callable).
_REGISTRY: dict[str, tuple[ExperimentSpec, Callable[..., ExperimentResult]]] = {}


def register(
    spec: ExperimentSpec,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment ``run`` function under its id."""

    def decorator(run: Callable[..., ExperimentResult]):
        if spec.id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {spec.id!r}")
        _REGISTRY[spec.id] = (spec, run)
        return run

    return decorator


def get_experiment(
    experiment_id: str,
) -> tuple[ExperimentSpec, Callable[..., ExperimentResult]]:
    """Look up a registered experiment by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[key]


def all_experiments() -> Mapping[str, tuple[ExperimentSpec, Callable[..., ExperimentResult]]]:
    """All registered experiments, keyed by id."""
    return dict(sorted(_REGISTRY.items()))


def run_experiment(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    store: TrialStore | None = None,
    engine: str | None = None,
    trials: int | None = None,
    progress: ProgressCallback | None = None,
) -> ExperimentResult:
    """Run a registered experiment under an orchestration context.

    ``jobs``, ``store``, and the ``engine``/``trials`` overrides reach the
    experiment's declarative :func:`~repro.experiments.runner
    .stabilization_trials` batches through the ambient
    :class:`~repro.orchestration.context.ExecutionContext` — experiment
    ``run()`` signatures stay ``(scale, seed)``.  The defaults reproduce a
    plain ``run(scale=..., seed=...)`` call exactly.
    """
    _spec, run = get_experiment(experiment_id)
    with execution_context(
        jobs=jobs, store=store, engine=engine, trials=trials, progress=progress
    ):
        return run(scale=scale, seed=seed)


def scaled(values: Sequence[int], scale: float, minimum: int = 1) -> list[int]:
    """Scale a trial/size grid, keeping every entry at least ``minimum``."""
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    return [max(minimum, round(value * scale)) for value in values]
