"""Instrumentation hooks shared by the synchronization experiments.

These decode only the fields they need, caching per state id, so they can
ride along full-length runs without dominating the step cost.
"""

from __future__ import annotations

__all__ = ["ColorGenerationTracker", "EpochEntryTracker"]


class ColorGenerationTracker:
    """Track per-agent color *generations* along a PLL run.

    Colors cycle mod 3, so the tracker counts how many color changes each
    agent has been through (its generation); an agent at generation ``g``
    shows color ``g mod 3``.  Records, per generation ``g``:

    * ``first_step[g]`` — the step at which the *first* agent reached
      generation ``g`` (the paper's ``C_start`` moments), and
    * ``all_step[g]`` — the first step at which *every* agent had reached
      generation ``>= g`` (the paper's ``C_color`` moments).
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._generation = [0] * n
        self._at_generation = {0: n}
        self._min_generation = 0
        self._color_of_id: dict[int, int] = {}
        self.first_step: dict[int, int] = {0: 0}
        self.all_step: dict[int, int] = {0: 0}

    def _color(self, sim, sid: int) -> int:
        color = self._color_of_id.get(sid)
        if color is None:
            # Works for PLLState and for the standalone TimerState alike —
            # anything exposing a `color` field.
            color = sim.interner.state_of(sid).color
            self._color_of_id[sid] = color
        return color

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        for agent, pre, post in ((u, pre0, post0), (v, pre1, post1)):
            if pre == post:
                continue
            old_color = self._color(sim, pre)
            new_color = self._color(sim, post)
            if old_color == new_color:
                continue
            generation = self._generation[agent] + 1
            self._generation[agent] = generation
            counts = self._at_generation
            counts[generation - 1] -= 1
            counts[generation] = counts.get(generation, 0) + 1
            if generation not in self.first_step:
                self.first_step[generation] = sim.steps
            while counts.get(self._min_generation, 0) == 0:
                self._min_generation += 1
                self.all_step[self._min_generation] = sim.steps

    def generation_of(self, agent: int) -> int:
        return self._generation[agent]

    @property
    def max_generation(self) -> int:
        return max(self.first_step)


class EpochEntryTracker:
    """Record the first step at which any agent reaches each epoch."""

    def __init__(self) -> None:
        self.first_step: dict[int, int] = {1: 0}
        self._epoch_of_id: dict[int, int] = {}

    def _epoch(self, sim, sid: int) -> int:
        epoch = self._epoch_of_id.get(sid)
        if epoch is None:
            epoch = sim.interner.state_of(sid).epoch
            self._epoch_of_id[sid] = epoch
        return epoch

    def __call__(self, sim, u, v, pre0, pre1, post0, post1) -> None:
        for post in (post0, post1):
            epoch = self._epoch(sim, post)
            if epoch not in self.first_step:
                self.first_step[epoch] = sim.steps

    def reached(self, epoch: int) -> bool:
        return epoch in self.first_step
