"""E7 — Lemma 8: a unique leader before the fourth epoch, usually.

Lemma 8: with probability ``1 - O(1/log n)``, the number of leaders is
exactly one before any agent enters epoch 4 — i.e. QuickElimination plus
the two Tournament rounds almost always finish the job and BackUp is only
a safety net.

We run PLL until the first agent reaches epoch 4 and record whether a
unique leader already existed.  The deviation rate should shrink with
``n`` roughly like ``c / lg n``, and — crucially for the ``O(log n)``
total — the ``"no-tournament"`` ablation shows a much larger deviation
rate (QuickElimination ties alone are constant-probability).
"""

from __future__ import annotations

import math

from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.hooks import EpochEntryTracker
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E7",
    title="Unique leader before epoch 4 (Tournament effectiveness)",
    paper_artifact="Lemma 8",
    paper_claim="P(#leaders = 1 before any agent enters epoch 4) >= 1 - O(1/log n)",
    bench="benchmarks/bench_lemma8_tournament.py",
)


def _deviation_rate(variant: str, n: int, trials: int, seed: int) -> float:
    protocol = PLLProtocol.for_population(n, variant=variant)
    failures = 0
    budget = 200 * protocol.params.m * n  # several color periods
    for trial in range(trials):
        sim = AgentSimulator(protocol, n, seed=seed + trial)
        tracker = EpochEntryTracker()
        sim.add_hook(tracker)
        sim.run(budget, until=lambda s, t=tracker: t.reached(4), check_every=16)
        if not tracker.reached(4):
            # Stabilized to one leader before epoch 4 even began ticking
            # over — that counts as success if a single leader exists.
            failures += 0 if sim.leader_count == 1 else 1
        elif sim.leader_count != 1:
            failures += 1
    return failures / trials


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([120], scale)[0]
    headers = [
        "n",
        "variant",
        "P(multiple leaders at epoch-4 entry)",
        "scale 1/lg n",
        "consistent",
    ]
    rows = []
    for n in (64, 256):
        reference = 1 / math.log2(n)
        full_rate = _deviation_rate("full", n, trials, seed)
        ablated_rate = _deviation_rate("no-tournament", n, trials, seed)
        rows.append(
            {
                "n": n,
                "variant": "full (QE + 2x Tournament)",
                "P(multiple leaders at epoch-4 entry)": full_rate,
                "scale 1/lg n": reference,
                # O(1/log n) with a modest constant: allow 2/lg n plus noise.
                "consistent": full_rate <= 2 * reference + 3 / math.sqrt(trials),
            }
        )
        rows.append(
            {
                "n": n,
                "variant": "no-tournament (ablation)",
                "P(multiple leaders at epoch-4 entry)": ablated_rate,
                "scale 1/lg n": reference,
                "consistent": "(expected constant-rate: QE ties alone)",
            }
        )
    notes = [
        f"{trials} runs per row; a run 'fails' when >1 leader remains at "
        "the first epoch-4 entry",
        "the ablation row shows what Tournament buys: without it, ties "
        "persist into BackUp with constant probability",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
