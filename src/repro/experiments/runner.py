"""Seeded multi-trial measurement helpers shared by all experiments.

Every trial gets its own derived seed (``base_seed + trial``), so any
single data point in EXPERIMENTS.md can be reproduced in isolation.

Trials route through :mod:`repro.orchestration`: when the protocol is
named declaratively (a registry name string, optionally with ``params``),
the batch becomes content-hashed :class:`TrialSpec`\\ s that the active
:class:`~repro.orchestration.context.ExecutionContext` may parallelize
across cores (``--jobs``) and cache in a persistent store (``--store``).
The default context runs serially in-process — byte-identical to the
historical loop — and passing a plain protocol factory callable always
takes that serial path (callables neither hash nor pickle).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.engine.protocol import Protocol
from repro.errors import ExperimentError
from repro.faults.plan import FaultPlan, resolve_engine
from repro.schedulers.spec import SchedulerSpec, resolve_schedule_engine
from repro.orchestration.context import current_context
from repro.orchestration.pool import build_simulator, measure_trial, run_specs
from repro.orchestration.spec import (
    AUTO_ENGINE,
    TrialOutcome,
    default_engine,
    trial_specs,
)

__all__ = ["TrialOutcome", "stabilization_trials", "make_simulator"]


def make_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
):
    """Build the requested engine (``"agent"``, ``"multiset"``, ``"batch"``,
    ``"superbatch"``, or ``"auto"`` to pick by population size)."""
    return build_simulator(protocol, n, seed=seed, engine=engine)


def stabilization_trials(
    protocol: Callable[[], Protocol] | str,
    n: int,
    trials: int,
    base_seed: int = 0,
    engine: str = AUTO_ENGINE,
    max_steps: int | None = None,
    params: Mapping[str, object] | None = None,
    fault_plan=None,
    scheduler=None,
) -> list[TrialOutcome]:
    """Measure stabilization over ``trials`` independent runs.

    ``protocol`` is either a registry name (``"pll"``, ``"angluin"``, ...;
    see :mod:`repro.orchestration.registry`) with optional ``params``, or
    a zero-argument factory callable.  Named protocols honor the active
    execution context (worker pool, trial store, ``--engine``/``--trials``
    overrides); factory callables always run serially in-process.

    The default engine is ``"auto"``: per data point, production-scale
    sweeps route through the count-level super-batch engine, mid-size
    sweeps through the batch engine, and everything below the batch
    crossover resolves to the multiset chain
    (:func:`~repro.orchestration.spec.default_engine` — deliberately a
    function of ``n`` alone, so hashes never depend on campaign depth).
    Multi-trial named cells then pack into across-trial ensemble lanes
    inside the pool; factory callables cannot be packed (they run one
    simulator at a time) and execute their multiset trials solo.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`, an event
    list, or ``None``) schedules mid-run faults; each outcome then
    carries the serialized per-fault recovery record in ``.faults``.
    Exchangeable plans keep the size-resolved engine; non-exchangeable
    ones degrade ``auto`` to the per-agent engine (see
    :func:`~repro.faults.plan.resolve_engine`).

    ``scheduler`` (a :class:`~repro.schedulers.spec.SchedulerSpec`, a
    mapping, or ``None``) selects the interaction schedule; outcomes
    then carry the serialized scheduler record in ``.scheduler``.
    Exchangeable families (``weighted``) likewise keep the
    size-resolved engine via the reweighted samplers; graph-restricted
    families degrade ``auto`` to the per-agent engine (see
    :func:`~repro.schedulers.spec.resolve_schedule_engine`).
    """
    if trials < 1:
        raise ExperimentError(f"trials must be positive, got {trials}")
    if isinstance(protocol, str):
        context = current_context()
        if context.engine is not None:
            engine = context.engine
        if context.trials is not None:
            trials = context.trials
        specs = trial_specs(
            protocol,
            n,
            trials,
            base_seed=base_seed,
            engine=engine,
            params=params,
            max_steps=max_steps,
            fault_plan=fault_plan,
            scheduler=scheduler,
        )
        return run_specs(
            specs,
            jobs=context.jobs,
            store=context.store,
            progress=context.progress,
        ).outcomes
    if params is not None:
        raise ExperimentError(
            "params only apply to registry-named protocols; bind them into "
            "the factory instead"
        )
    plan = FaultPlan.coerce(fault_plan)
    sched = SchedulerSpec.coerce(scheduler)
    if engine == AUTO_ENGINE:
        engine = resolve_engine(plan, resolve_schedule_engine(sched, default_engine(n)))
    return [
        measure_trial(
            protocol(),
            n,
            base_seed + trial,
            engine=engine,
            max_steps=max_steps,
            fault_plan=plan,
            scheduler=sched,
        )
        for trial in range(trials)
    ]


def parallel_times(outcomes: Sequence[TrialOutcome]) -> list[float]:
    """Extract the parallel-time column from trial outcomes."""
    return [outcome.parallel_time for outcome in outcomes]
