"""Seeded multi-trial measurement helpers shared by all experiments.

Every trial gets its own derived seed (``base_seed + trial``), so any
single data point in EXPERIMENTS.md can be reproduced in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.engine.multiset import MultisetSimulator
from repro.engine.protocol import Protocol
from repro.engine.simulator import AgentSimulator
from repro.errors import ExperimentError

__all__ = ["TrialOutcome", "stabilization_trials", "make_simulator"]


@dataclass(frozen=True)
class TrialOutcome:
    """One stabilization measurement."""

    seed: int
    steps: int
    parallel_time: float
    leader_count: int
    distinct_states: int


def make_simulator(
    protocol: Protocol,
    n: int,
    seed: int,
    engine: str = "agent",
):
    """Build the requested engine (``"agent"`` or ``"multiset"``)."""
    if engine == "agent":
        return AgentSimulator(protocol, n, seed=seed)
    if engine == "multiset":
        return MultisetSimulator(protocol, n, seed=seed)
    raise ExperimentError(f"unknown engine {engine!r}; use 'agent' or 'multiset'")


def stabilization_trials(
    protocol_factory: Callable[[], Protocol],
    n: int,
    trials: int,
    base_seed: int = 0,
    engine: str = "agent",
    max_steps: int | None = None,
) -> list[TrialOutcome]:
    """Measure stabilization over ``trials`` independent runs.

    A fresh protocol instance per trial keeps per-instance caches (none
    today, but custom protocols may memoize) from leaking across trials.
    """
    if trials < 1:
        raise ExperimentError(f"trials must be positive, got {trials}")
    outcomes = []
    for trial in range(trials):
        seed = base_seed + trial
        sim = make_simulator(protocol_factory(), n, seed=seed, engine=engine)
        steps = sim.run_until_stabilized(max_steps=max_steps)
        outcomes.append(
            TrialOutcome(
                seed=seed,
                steps=steps,
                parallel_time=sim.parallel_time,
                leader_count=sim.leader_count,
                distinct_states=sim.distinct_states_seen(),
            )
        )
    return outcomes


def parallel_times(outcomes: Sequence[TrialOutcome]) -> list[float]:
    """Extract the parallel-time column from trial outcomes."""
    return [outcome.parallel_time for outcome in outcomes]
