"""E9 — Theorem 1: PLL stabilizes in O(log n) expected parallel time.

The headline result.  We measure stabilization parallel time across a
doubling grid of ``n`` and report the ratio to ``lg n``: Theorem 1
predicts a flat ratio.

Measurement note: PLL's time distribution is strongly bimodal.  With
probability ~0.72 QuickElimination alone leaves a unique leader within a
few ``lg n`` (Lemma 7's ``i = 1`` mass); otherwise the run waits for
Tournament/BackUp epochs, each costing ``~20.5 m`` parallel time (the
``cmax = 41 m`` timer period).  Both branches are ``Theta(log n)``, but
the mixture makes the *sample mean* extremely high-variance at small
trial counts.  We therefore use a healthy trial count, report mean (with
CI), median, and a 10% trimmed mean, and fit the growth model on the
trimmed mean — unbiased estimates of a log-shaped quantity with far less
tail noise than the raw mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.scaling import fit_scaling
from repro.analysis.stats import summarize
from repro.experiments.runner import stabilization_trials
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E9",
    title="PLL stabilization time scaling",
    paper_artifact="Theorem 1",
    paper_claim="expected stabilization time is O(log n) parallel time",
    bench="benchmarks/bench_theorem1.py",
)

#: The measurement grid, shared with the E9 campaign builder
#: (:func:`repro.experiments.campaigns.campaign_for`) so `repro run E9`
#: and `repro campaign run E9` address the same store rows.
NS = [64, 128, 256, 512, 1024, 2048]
TRIALS = 48

#: Large-``n`` extension cells: population sizes only the count-level
#: engines reach in reasonable time (``auto`` resolves them to batch /
#: superbatch).  They join the grid from ``scale >= LARGE_N_SCALE`` —
#: an explicit opt-in, because even a handful of 10^8-agent trials
#: dominates the sweep's wall clock — with a reduced per-cell trial
#: count: the scaling *fit* still runs on the dense small-``n`` grid,
#: and the large cells extend the trimmed/lg n ratio column out to
#: production scale.
LARGE_NS = [1 << 20, 1 << 23, 1 << 26]
LARGE_N_SCALE = 4.0
LARGE_N_TRIALS = 4


def grid(scale: float) -> tuple[list[int], int]:
    """The dense small-``n`` ``(ns, trials)`` grid at a given scale."""
    ns = NS
    if scale < 0.5:
        ns = ns[: max(3, int(len(ns) * scale * 2))]
    return ns, scaled([TRIALS], scale)[0]


def large_cells(scale: float) -> list[tuple[int, int]]:
    """Large-``n`` ``(n, trials)`` extension cells; empty below the gate."""
    if scale < LARGE_N_SCALE:
        return []
    return [(n, LARGE_N_TRIALS) for n in LARGE_NS]


def trimmed_mean(values: list[float], fraction: float = 0.1) -> float:
    """Mean with the top and bottom ``fraction`` of samples dropped."""
    data = np.sort(np.asarray(values, dtype=float))
    drop = int(len(data) * fraction)
    kept = data[drop : len(data) - drop] if drop else data
    return float(kept.mean())


@register(SPEC)
def run(
    scale: float = 1.0,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    ns, trials = grid(scale)
    headers = [
        "n",
        "trials",
        "mean time (parallel)",
        "ci95 half-width",
        "median",
        "trimmed mean",
        "trimmed / lg n",
    ]
    rows = []
    trimmed = []
    cells = [(n, trials) for n in ns] + large_cells(scale)
    for n, cell_trials in cells:
        outcomes = stabilization_trials(
            "pll",
            n,
            cell_trials,
            base_seed=seed,
            engine=engine,
        )
        assert all(outcome.leader_count == 1 for outcome in outcomes)
        times = [outcome.parallel_time for outcome in outcomes]
        summary = summarize(times)
        robust = trimmed_mean(times)
        if n in ns:
            # Only the dense small-n grid feeds the growth-model fit;
            # the large-n extension cells are too thin in trials.
            trimmed.append(robust)
        rows.append(
            {
                "n": n,
                "trials": len(outcomes),
                "mean time (parallel)": summary.mean,
                "ci95 half-width": (summary.ci95_high - summary.ci95_low) / 2,
                "median": summary.median,
                "trimmed mean": robust,
                "trimmed / lg n": robust / math.log2(n),
            }
        )
    fit = fit_scaling(ns, trimmed, models=("log", "log^2", "linear", "sqrt"))
    notes = [
        f"best-fit growth model (on trimmed means): {fit} (must be 'log')",
        "the trimmed/lg n ratio should be flat; PLL's time distribution is "
        "bimodal (fast QuickElimination path vs epoch-waiting path), so "
        "the raw mean carries a heavy slow-path tail — see module docstring",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
