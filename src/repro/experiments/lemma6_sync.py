"""E5 — Lemma 6: the three synchronization propositions P1/P2/P3.

From a configuration in ``C_start(i)`` (a new color has just appeared):

* **P1** — no agent gets color ``i+1`` within the first ``21 n ln n``
  steps, with high probability (the timers cannot wrap that fast);
* **P2** — all agents have color ``i`` within ``4 n ln n`` steps whp
  (the color epidemic completes);
* **P3** — the next ``C_start`` arrives within ``O(log n)`` parallel time.

The initial configuration is in ``C_start(0)``, and every later
generation-``g`` first-arrival is (up to the timers' count phases) a
``C_start`` moment, so one full PLL run measures all three propositions
across several generations.
"""

from __future__ import annotations

import math

from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.hooks import ColorGenerationTracker
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E5",
    title="Synchronization: color holds, spreads, and renews on schedule",
    paper_artifact="Lemma 6 (P1, P2, P3)",
    paper_claim=(
        "P1: no next color within 21 n ln n steps whp; P2: color epidemic "
        "done within 4 n ln n steps whp; P3: next C_start within O(log n)"
    ),
    bench="benchmarks/bench_sync.py",
)

#: Color generations observed per run.
GENERATIONS = 3


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([15], scale)[0]
    headers = ["n", "proposition", "threshold (steps)", "violations/observations", "consistent"]
    rows = []
    for n in (64, 256):
        protocol = PLLProtocol.for_population(n)
        p1_threshold = math.floor(21 * n * math.log(n))
        p2_threshold = math.floor(4 * n * math.log(n))
        p1_violations = p1_observations = 0
        p2_violations = p2_observations = 0
        p3_gaps: list[float] = []
        for trial in range(trials):
            sim = AgentSimulator(protocol, n, seed=seed + trial)
            tracker = ColorGenerationTracker(n)
            sim.add_hook(tracker)
            budget = (GENERATIONS + 1) * 30 * protocol.params.m * n
            sim.run(
                budget,
                until=lambda s, t=tracker: t.max_generation > GENERATIONS,
                check_every=64,
            )
            for generation in range(1, GENERATIONS + 1):
                start = tracker.first_step.get(generation)
                next_start = tracker.first_step.get(generation + 1)
                covered = tracker.all_step.get(generation)
                previous = tracker.first_step.get(generation - 1, 0)
                # P1: the next color must not appear too soon after this one.
                if start is not None:
                    p1_observations += 1
                    if start - previous < p1_threshold:
                        p1_violations += 1
                # P2: everyone shows generation >= g soon after g appears.
                if start is not None and covered is not None:
                    p2_observations += 1
                    if covered - start > p2_threshold:
                        p2_violations += 1
                # P3: gap between consecutive C_start moments.
                if start is not None and next_start is not None:
                    p3_gaps.append((next_start - start) / n)
        rows.append(
            {
                "n": n,
                "proposition": "P1: color held >= 21 n ln n steps",
                "threshold (steps)": p1_threshold,
                "violations/observations": f"{p1_violations}/{p1_observations}",
                "consistent": p1_violations <= max(1, p1_observations // 20),
            }
        )
        rows.append(
            {
                "n": n,
                "proposition": "P2: epidemic done in 4 n ln n steps",
                "threshold (steps)": p2_threshold,
                "violations/observations": f"{p2_violations}/{p2_observations}",
                "consistent": p2_violations <= max(1, p2_observations // 20),
            }
        )
        max_gap = max(p3_gaps) if p3_gaps else float("nan")
        m = protocol.params.m
        rows.append(
            {
                "n": n,
                "proposition": "P3: next C_start within O(log n)",
                "threshold (steps)": f"gap/m <= 41 (max gap {max_gap:.1f})",
                "violations/observations": f"max gap/m = {max_gap / m:.2f}",
                "consistent": bool(p3_gaps) and max_gap / m < 41.0,
            }
        )
    notes = [
        f"{trials} PLL runs per n, {GENERATIONS} color generations each; "
        "'whp' allows a <=5% violation rate at these n",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
