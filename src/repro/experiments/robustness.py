"""E13 — Lemmas 9 and 10: recovery from arbitrary configurations.

The probability-1 correctness of PLL rests on two unconditional lemmas:

* **Lemma 9** — from *any* reachable configuration, every agent reaches
  epoch 4 within ``O(log n)`` parallel time (some timer always exists and
  the max epoch spreads by epidemic);
* **Lemma 10** — from any all-epoch-4 configuration, the pairwise-election
  rule elects a unique leader within ``O(n)`` expected parallel time.

Two stress scenarios make these measurable:

* **Partition-then-heal**: run the population under a
  :class:`~repro.engine.scheduler.RestrictedScheduler` that only lets a
  small clique interact (the rest are isolated) — this drives the clique
  deep into later epochs while everyone else is frozen at the initial
  state, a maximally skewed *reachable* configuration.  Then hand the run
  back to the uniform scheduler and measure time-to-all-epoch-4 and
  time-to-stabilization.
* **Scrambled epoch-4 start**: construct adversarial all-epoch-4
  configurations (random timer phases and colors, many equal-``levelB``
  leaders) and measure stabilization.  Lemma 10's argument needs nothing
  but the epoch-4 rules, so it must hold even for configurations no fair
  execution would produce.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.stats import summarize
from repro.core.pll import PLLProtocol
from repro.core.state import PLLState, STATUS_CANDIDATE, STATUS_TIMER
from repro.engine.scheduler import RandomScheduler, RestrictedScheduler
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E13",
    title="Robustness: recovery from adversarial configurations",
    paper_artifact="Lemmas 9 and 10",
    paper_claim=(
        "from any reachable configuration all agents reach epoch 4 within "
        "O(log n); from all-epoch-4, a unique leader within O(n) expected"
    ),
    bench="benchmarks/bench_robustness.py",
)


def _partition_then_heal(n: int, seed: int, clique: int = 4) -> tuple[float, float]:
    """(parallel time to all-epoch-4 after heal, total stabilization time)."""
    protocol = PLLProtocol.for_population(n)
    sim = AgentSimulator(
        protocol, n, scheduler=RestrictedScheduler(n, range(clique), seed=seed)
    )
    # Partition phase: drive the clique through several timer periods.
    sim.run(8 * protocol.params.cmax * clique)
    heal_step = sim.steps
    sim.set_scheduler(RandomScheduler(n, seed=seed + 1))

    def all_epoch4(s: AgentSimulator) -> bool:
        return all(state.epoch == 4 for state in s.configuration())

    sim.run(3000 * protocol.params.m * n, until=all_epoch4, check_every=max(64, n // 2))
    epoch4_time = (sim.steps - heal_step) / n
    sim.run_until_stabilized()
    return epoch4_time, (sim.steps - heal_step) / n


def scrambled_epoch4_configuration(
    n: int, leaders: int, rng: np.random.Generator, params
) -> list[PLLState]:
    """An adversarial all-epoch-4 configuration: random phases, tied leaders."""
    states: list[PLLState] = []
    candidates = n - n // 2
    for index in range(candidates):
        states.append(
            PLLState(
                leader=index < leaders,
                status=STATUS_CANDIDATE,
                epoch=4,
                color=int(rng.integers(0, 3)),
                level_b=params.lmax,  # everyone pinned at the cap: pure Lemma 10
            )
        )
    for _ in range(n // 2):
        states.append(
            PLLState(
                leader=False,
                status=STATUS_TIMER,
                epoch=4,
                color=int(rng.integers(0, 3)),
                count=int(rng.integers(0, params.cmax)),
            )
        )
    return states


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([10], scale)[0]
    headers = ["scenario", "n", "measured (parallel time)", "reference", "consistent"]
    rows = []

    # Lemma 9 analogue: partition, heal, measure epoch-4 convergence.
    for n in (32, 128):
        epoch4_times = []
        total_times = []
        for trial in range(trials):
            epoch4_time, total_time = _partition_then_heal(n, seed + 97 * trial)
            epoch4_times.append(epoch4_time)
            total_times.append(total_time)
        mean_epoch4 = summarize(epoch4_times).mean
        m = PLLProtocol.for_population(n).params.m
        rows.append(
            {
                "scenario": "partition-heal: all agents at epoch 4",
                "n": n,
                "measured (parallel time)": mean_epoch4,
                "reference": f"O(log n); 100 m = {100 * m}",
                "consistent": mean_epoch4 < 100 * m,
            }
        )
        rows.append(
            {
                "scenario": "partition-heal: full stabilization",
                "n": n,
                "measured (parallel time)": summarize(total_times).mean,
                "reference": "finite (probability-1 correctness)",
                "consistent": True,
            }
        )

    # Lemma 10 analogue: scrambled epoch-4 starts with many tied leaders.
    for n in (32, 128):
        protocol = PLLProtocol.for_population(n)
        rng = np.random.default_rng(seed)
        times = []
        for trial in range(trials):
            sim = AgentSimulator(protocol, n, seed=seed + trial)
            sim.load_configuration(
                scrambled_epoch4_configuration(
                    n, leaders=n // 4, rng=rng, params=protocol.params
                )
            )
            sim.run_until_stabilized()
            times.append(sim.parallel_time)
        mean_time = summarize(times).mean
        rows.append(
            {
                "scenario": "scrambled epoch-4, n/4 tied leaders",
                "n": n,
                "measured (parallel time)": mean_time,
                "reference": f"O(n); 4n = {4 * n}",
                "consistent": mean_time < 4 * n,
            }
        )
    notes = [
        f"{trials} trials per scenario",
        "partition phase: only a 4-agent clique interacts for 8 cmax "
        "rounds, then the scheduler heals",
        "scrambled starts pin every levelB at lmax so only the pairwise "
        "rule (line 58) can make progress — the pure Lemma 10 regime; its "
        "expected meeting time for the last two leaders is ~n/2",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
