"""E13 — Lemmas 9 and 10: recovery from arbitrary configurations.

The probability-1 correctness of PLL rests on two unconditional lemmas:

* **Lemma 9** — from *any* reachable configuration, every agent reaches
  epoch 4 within ``O(log n)`` parallel time (some timer always exists and
  the max epoch spreads by epidemic);
* **Lemma 10** — from any all-epoch-4 configuration, the pairwise-election
  rule elects a unique leader within ``O(n)`` expected parallel time.

Three stress families make these measurable:

* **Partition-then-heal**: run the population under a
  :class:`~repro.engine.scheduler.RestrictedScheduler` that only lets a
  small clique interact (the rest are isolated) — this drives the clique
  deep into later epochs while everyone else is frozen at the initial
  state, a maximally skewed *reachable* configuration.  Then hand the run
  back to the uniform scheduler and measure time-to-all-epoch-4 and
  time-to-stabilization.
* **Scrambled epoch-4 start**: construct adversarial all-epoch-4
  configurations (random timer phases and colors, many equal-``levelB``
  leaders) and measure stabilization.  Lemma 10's argument needs nothing
  but the epoch-4 rules, so it must hold even for configurations no fair
  execution would produce.
* **Fault grid** (protocol × n × kind × severity): declarative
  :class:`~repro.faults.plan.FaultPlan`\\ s inject transient corruption
  and churn mid-run and the :class:`~repro.faults.injector.FaultInjector`
  measures per-fault recovery time — interactions from the fault to the
  re-armed convergence detector's first hit.  The grid constants here
  are shared with the ``EROB`` campaign builder
  (:mod:`repro.experiments.campaigns`) so ``repro run E13`` and
  ``repro campaign run EROB`` address identical spec hashes and share
  trial-store rows.
"""

from __future__ import annotations

import json
import math
from collections import Counter

import numpy as np

from repro.analysis.stats import summarize
from repro.core.pll import PLLProtocol
from repro.core.state import PLLState, STATUS_CANDIDATE, STATUS_TIMER
from repro.engine.scheduler import RandomScheduler, RestrictedScheduler
from repro.experiments.runner import make_simulator, stabilization_trials
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled
from repro.faults.plan import FaultPlan

SPEC = ExperimentSpec(
    id="E13",
    title="Robustness: recovery from adversarial configurations",
    paper_artifact="Lemmas 9 and 10",
    paper_claim=(
        "from any reachable configuration all agents reach epoch 4 within "
        "O(log n); from all-epoch-4, a unique leader within O(n) expected"
    ),
    bench="benchmarks/bench_robustness.py",
)

#: The fault grid, shared with the EROB campaign builder
#: (:func:`repro.experiments.campaigns.campaign_for`) so both entry
#: points produce identical spec hashes and share store rows.  Kinds are
#: the exchangeable pair — uniform-victim corruption and churn apply on
#: count vectors, so the grid survives on batch/superbatch engines at
#: any ``n`` the ``auto`` resolution picks.
FAULT_KINDS = ("corrupt", "churn")

#: Fraction of the population each fault hits.
FAULT_SEVERITIES = (0.05, 0.25)

#: Population sizes per protocol for the dense (always-on) grid cells.
FAULT_NS = {"pll": (256, 1024), "angluin": (256,)}

#: Trials per grid cell at scale 1.
FAULT_TRIALS = 5

#: Superbatch-scale extension cells: joined from ``scale >=
#: LARGE_N_SCALE`` (same explicit opt-in as E9's large-``n`` cells —
#: even a few million-agent faulted trials dominate the wall clock).
LARGE_FAULT_NS = {"pll": (1_000_000,)}
LARGE_N_SCALE = 4.0
LARGE_FAULT_TRIALS = 3


def fault_plan_for(n: int, kind: str, severity: float) -> FaultPlan:
    """The grid's one-event plan: hit ``severity * n`` agents at step
    ``2 n`` (two parallel-time units in — election well underway, not
    yet necessarily stabilized)."""
    return FaultPlan.create(
        [{"kind": kind, "at_step": 2 * n, "count": max(1, round(severity * n))}]
    )


def fault_grid(scale: float) -> list[tuple[str, int, str, float, int]]:
    """``(protocol, n, kind, severity, trials)`` cells at a given scale.

    Below ``scale=0.5`` each protocol keeps only its smallest ``n`` (the
    experiment smoke tests run every registered experiment at tiny
    scale); from :data:`LARGE_N_SCALE` the superbatch-scale extension
    cells join with their own reduced trial count.
    """
    trials = scaled([FAULT_TRIALS], scale)[0]
    cells = []
    for protocol, all_ns in FAULT_NS.items():
        ns = all_ns[:1] if scale < 0.5 else all_ns
        for n in ns:
            for kind in FAULT_KINDS:
                for severity in FAULT_SEVERITIES:
                    cells.append((protocol, n, kind, severity, trials))
    if scale >= LARGE_N_SCALE:
        for protocol, all_ns in LARGE_FAULT_NS.items():
            for n in all_ns:
                for kind in FAULT_KINDS:
                    for severity in FAULT_SEVERITIES:
                        cells.append(
                            (protocol, n, kind, severity, LARGE_FAULT_TRIALS)
                        )
    return cells


def recovery_parallel_times(faults_json: str | None) -> list[float]:
    """Per-event recovery parallel times from one outcome's fault record
    (events the run never re-converged after are dropped)."""
    if not faults_json:
        return []
    events = json.loads(faults_json).get("events", [])
    return [
        event["recovery_parallel_time"]
        for event in events
        if event.get("recovery_parallel_time") is not None
    ]


def _partition_then_heal(n: int, seed: int, clique: int = 4) -> tuple[float, float]:
    """(parallel time to all-epoch-4 after heal, total stabilization time)."""
    protocol = PLLProtocol.for_population(n)
    # Per-agent engine via the shared registry builder: restricted
    # interaction graphs need agent identity, the one non-exchangeable
    # regime (DESIGN.md §10).
    sim = make_simulator(protocol, n, seed=seed, engine="agent")
    sim.set_scheduler(RestrictedScheduler(n, range(clique), seed=seed))
    # Partition phase: drive the clique through several timer periods.
    sim.run(8 * protocol.params.cmax * clique)
    heal_step = sim.steps
    sim.set_scheduler(RandomScheduler(n, seed=seed + 1))

    def all_epoch4(s) -> bool:
        return all(state.epoch == 4 for state in s.configuration())

    sim.run(3000 * protocol.params.m * n, until=all_epoch4, check_every=max(64, n // 2))
    epoch4_time = (sim.steps - heal_step) / n
    sim.run_until_stabilized()
    return epoch4_time, (sim.steps - heal_step) / n


def scrambled_epoch4_configuration(
    n: int, leaders: int, rng: np.random.Generator, params
) -> list[PLLState]:
    """An adversarial all-epoch-4 configuration: random phases, tied leaders."""
    states: list[PLLState] = []
    candidates = n - n // 2
    for index in range(candidates):
        states.append(
            PLLState(
                leader=index < leaders,
                status=STATUS_CANDIDATE,
                epoch=4,
                color=int(rng.integers(0, 3)),
                level_b=params.lmax,  # everyone pinned at the cap: pure Lemma 10
            )
        )
    for _ in range(n // 2):
        states.append(
            PLLState(
                leader=False,
                status=STATUS_TIMER,
                epoch=4,
                color=int(rng.integers(0, 3)),
                count=int(rng.integers(0, params.cmax)),
            )
        )
    return states


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([10], scale)[0]
    headers = ["scenario", "n", "measured (parallel time)", "reference", "consistent"]
    rows = []

    # Lemma 9 analogue: partition, heal, measure epoch-4 convergence.
    for n in (32, 128):
        epoch4_times = []
        total_times = []
        for trial in range(trials):
            epoch4_time, total_time = _partition_then_heal(n, seed + 97 * trial)
            epoch4_times.append(epoch4_time)
            total_times.append(total_time)
        mean_epoch4 = summarize(epoch4_times).mean
        m = PLLProtocol.for_population(n).params.m
        rows.append(
            {
                "scenario": "partition-heal: all agents at epoch 4",
                "n": n,
                "measured (parallel time)": mean_epoch4,
                "reference": f"O(log n); 100 m = {100 * m}",
                "consistent": mean_epoch4 < 100 * m,
            }
        )
        rows.append(
            {
                "scenario": "partition-heal: full stabilization",
                "n": n,
                "measured (parallel time)": summarize(total_times).mean,
                "reference": "finite (probability-1 correctness)",
                "consistent": True,
            }
        )

    # Lemma 10 analogue: scrambled epoch-4 starts with many tied leaders.
    # The engine comes from the registry resolution (count semantics are
    # engine-independent, so the multiset/batch chains measure the same
    # process); the per-agent list collapses to a count vector first.
    for n in (32, 128):
        protocol = PLLProtocol.for_population(n)
        rng = np.random.default_rng(seed)
        times = []
        for trial in range(trials):
            sim = make_simulator(protocol, n, seed=seed + trial, engine="auto")
            configuration = scrambled_epoch4_configuration(
                n, leaders=n // 4, rng=rng, params=protocol.params
            )
            if hasattr(sim, "load_counts"):
                sim.load_counts(dict(Counter(configuration)))
            else:
                sim.load_configuration(configuration)
            sim.run_until_stabilized()
            times.append(sim.parallel_time)
        mean_time = summarize(times).mean
        rows.append(
            {
                "scenario": "scrambled epoch-4, n/4 tied leaders",
                "n": n,
                "measured (parallel time)": mean_time,
                "reference": f"O(n); 4n = {4 * n}",
                "consistent": mean_time < 4 * n,
            }
        )

    # Fault grid: injected corruption/churn with measured recovery times.
    for protocol_name, n, kind, severity, cell_trials in fault_grid(scale):
        outcomes = stabilization_trials(
            protocol_name,
            n,
            cell_trials,
            base_seed=seed,
            fault_plan=fault_plan_for(n, kind, severity),
        )
        recoveries = []
        recovered_all = True
        for outcome in outcomes:
            if outcome is None:
                recovered_all = False
                continue
            times = recovery_parallel_times(outcome.faults)
            recovered_all = recovered_all and bool(times)
            recoveries.extend(times)
        mean_recovery = summarize(recoveries).mean if recoveries else math.inf
        rows.append(
            {
                "scenario": f"fault: {kind} {severity:.0%} ({protocol_name})",
                "n": n,
                "measured (parallel time)": mean_recovery,
                "reference": "re-converges within budget (Lemmas 9-10)",
                "consistent": recovered_all,
            }
        )

    notes = [
        f"{trials} trials per adversarial-configuration scenario",
        "partition phase: only a 4-agent clique interacts for 8 cmax "
        "rounds, then the scheduler heals",
        "scrambled starts pin every levelB at lmax so only the pairwise "
        "rule (line 58) can make progress — the pure Lemma 10 regime; its "
        "expected meeting time for the last two leaders is ~n/2",
        "fault rows: recovery time is measured from the fault event to "
        "the re-armed convergence detector's first hit; `repro telemetry "
        "faults <store>` renders the stored per-event records",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
