"""E14 — adversarial schedules: stabilization off the uniform scheduler.

The paper's analysis (and every bound it proves) assumes the uniformly
random scheduler ``Gamma`` of Section 2.  This experiment measures what
happens when the scheduler is adversarial but still randomized:

* **State-weighted schedules** (``weighted`` family): ordered pair
  ``(u, v)`` is selected with probability proportional to
  ``w(u) * w(v)`` over the agents' output symbols.  Leaders meeting
  more often (``w(L) > 1``) accelerates the elimination phases; leaders
  hiding (``w(L) < 1``) starves exactly the meetings Lemma 8's
  tournament needs.  These schedules are exchangeable — agent identity
  never matters — so they run on whatever count-level engine the
  population size resolves to, via the thinned samplers in
  :mod:`repro.schedulers.weighted`.
* **Graph-restricted schedules** (``ring``/``torus``/``regular``/
  ``cliques``): interactions are uniform over the directed edges of a
  fixed graph.  These need agent identity, so the degradation ladder
  routes them to the per-agent engine and records ``degraded_from`` in
  the store.  PLL and Angluin *never* stabilize on sparse graphs (a
  leader's elimination needs meetings a ring never delivers within any
  practical budget), so the graph cells run the ``fast-nonce`` protocol
  — its max-nonce relay elects on any connected graph — with a fixed
  48-bit nonce width (``params={"bits": 48}``) so the direct-meeting
  tie-break backstop is never needed.
* **Recovery** (Lemma 9 analogue): mid-run faults injected *under* an
  adversarial schedule, measuring per-fault recovery time — the lemmas
  promise recovery from any reachable configuration, and the reachable
  set only shrinks under a restricted scheduler.

Grid constants are shared with the ``ESCHED`` campaign builder
(:mod:`repro.experiments.campaigns`) so ``repro run E14`` and ``repro
campaign run ESCHED`` address identical spec hashes and share trial
store rows.
"""

from __future__ import annotations

import math

from repro.analysis.stats import summarize
from repro.experiments.robustness import recovery_parallel_times
from repro.experiments.runner import stabilization_trials
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled
from repro.faults.plan import FaultPlan
from repro.schedulers.spec import SchedulerSpec

SPEC = ExperimentSpec(
    id="E14",
    title="Adversarial schedules: non-uniform and graph-restricted interaction",
    paper_artifact="Section 2 (the uniform scheduler Gamma) + Lemmas 9/10",
    paper_claim=(
        "the O(log n) bound is proved under the uniformly random scheduler; "
        "stabilization must survive (with measured inflation) under "
        "non-uniform schedules, and recovery still completes"
    ),
    bench="benchmarks/bench_schedules.py",
)

#: Protocols measured under state-weighted schedules (exchangeable, so
#: these cells stay on the size-resolved count-level engine).
WEIGHTED_PROTOCOLS = ("pll", "angluin")

#: Population size for the weighted cells.
WEIGHTED_N = 32

#: The two weighted regimes: leaders meeting 4x more often than their
#: weight-1 peers, and leaders hiding at a quarter of the uniform rate.
WEIGHT_MAPS = ({"L": 4.0}, {"L": 0.25})

#: The graph-cell protocol and its fixed nonce width (see module
#: docstring: PLL/Angluin cannot elect on sparse graphs, fast-nonce's
#: max-nonce relay can, and 48 bits makes nonce ties a non-event).
GRAPH_PROTOCOL = "fast-nonce"
GRAPH_PARAMS = {"bits": 48}

#: Population size for the graph cells (perfect square, divisible by 4:
#: valid for every family below).
GRAPH_N = 64

#: The graph-restricted schedule grid: one spec per family, at a sparse
#: parameterization — 2-regular ring, 4-regular torus, random 4-regular,
#: and four cliques joined by four bridge edges.
GRAPH_SCHEDULES = (
    {"family": "ring"},
    {"family": "torus"},
    {"family": "regular", "degree": 4},
    {"family": "cliques", "cliques": 4, "bridges": 4},
)

#: Trials per grid cell at scale 1.
SCHEDULE_TRIALS = 5

#: Fraction of the population each recovery-cell fault hits.
RECOVERY_SEVERITY = 0.25


def schedule_grid(
    scale: float,
) -> list[tuple[str, dict | None, int, dict | None, int]]:
    """``(protocol, params, n, scheduler, trials)`` cells at a scale.

    Includes the uniform baselines (``scheduler=None``) the inflation
    ratios divide by.  Below ``scale=0.5`` the grid keeps one weight map
    and one graph family (the experiment smoke tests and the CI
    scheduler-smoke slice run every cell at tiny scale).
    """
    trials = scaled([SCHEDULE_TRIALS], scale)[0]
    weight_maps = WEIGHT_MAPS[:1] if scale < 0.5 else WEIGHT_MAPS
    graph_schedules = GRAPH_SCHEDULES[:1] if scale < 0.5 else GRAPH_SCHEDULES
    cells: list[tuple[str, dict | None, int, dict | None, int]] = []
    for protocol in WEIGHTED_PROTOCOLS:
        cells.append((protocol, None, WEIGHTED_N, None, trials))
    cells.append((GRAPH_PROTOCOL, dict(GRAPH_PARAMS), GRAPH_N, None, trials))
    for protocol in WEIGHTED_PROTOCOLS:
        for weights in weight_maps:
            cells.append(
                (
                    protocol,
                    None,
                    WEIGHTED_N,
                    {"family": "weighted", "weights": dict(weights)},
                    trials,
                )
            )
    for schedule in graph_schedules:
        cells.append(
            (GRAPH_PROTOCOL, dict(GRAPH_PARAMS), GRAPH_N, dict(schedule), trials)
        )
    return cells


def recovery_cells(
    scale: float,
) -> list[tuple[str, dict | None, int, dict, FaultPlan, int]]:
    """``(protocol, params, n, scheduler, fault_plan, trials)`` cells.

    One weighted regime and one graph regime, each with an exchangeable
    mid-run fault at step ``2n`` (partition faults are rejected with a
    scheduler spec — the injector's heal would clobber the schedule —
    so the composition uses corruption and churn).
    """
    trials = scaled([SCHEDULE_TRIALS], scale)[0]
    corrupt = FaultPlan.create(
        [
            {
                "kind": "corrupt",
                "at_step": 2 * WEIGHTED_N,
                "count": max(1, round(RECOVERY_SEVERITY * WEIGHTED_N)),
            }
        ]
    )
    churn = FaultPlan.create(
        [
            {
                "kind": "churn",
                "at_step": 2 * GRAPH_N,
                "count": max(1, round(RECOVERY_SEVERITY * GRAPH_N)),
            }
        ]
    )
    return [
        (
            "pll",
            None,
            WEIGHTED_N,
            {"family": "weighted", "weights": dict(WEIGHT_MAPS[0])},
            corrupt,
            trials,
        ),
        (
            GRAPH_PROTOCOL,
            dict(GRAPH_PARAMS),
            GRAPH_N,
            {"family": "ring"},
            churn,
            trials,
        ),
    ]


def _cell_label(scheduler: dict | None) -> str:
    if scheduler is None:
        return "uniform"
    return SchedulerSpec.coerce(scheduler).describe()


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    headers = [
        "schedule",
        "protocol",
        "n",
        "mean parallel time",
        "inflation vs uniform",
        "consistent",
    ]
    rows = []

    # Baselines first: inflation ratios need the uniform mean per
    # (protocol, params, n) triple.
    baseline_mean: dict[tuple[str, int], float] = {}
    for protocol, params, n, scheduler, trials in schedule_grid(scale):
        outcomes = stabilization_trials(
            protocol,
            n,
            trials,
            base_seed=seed,
            params=params,
            scheduler=scheduler,
        )
        times = [
            outcome.parallel_time for outcome in outcomes if outcome is not None
        ]
        mean_time = summarize(times).mean if times else math.inf
        if scheduler is None:
            baseline_mean[(protocol, n)] = mean_time
            continue
        baseline = baseline_mean.get((protocol, n), math.inf)
        inflation = mean_time / baseline if baseline > 0 else math.inf
        rows.append(
            {
                "schedule": _cell_label(scheduler),
                "protocol": protocol,
                "n": n,
                "mean parallel time": mean_time,
                "inflation vs uniform": inflation,
                # Stabilized within the default budget and the schedule
                # cost less than two decades over uniform — sparse
                # graphs inflate by a constant-to-10x factor at these
                # sizes, never unboundedly.
                "consistent": len(times) == len(outcomes)
                and math.isfinite(inflation)
                and inflation < 100.0,
            }
        )

    # Recovery under an adversarial schedule (Lemma 9 analogue).
    for protocol, params, n, scheduler, plan, trials in recovery_cells(scale):
        outcomes = stabilization_trials(
            protocol,
            n,
            trials,
            base_seed=seed,
            params=params,
            scheduler=scheduler,
            fault_plan=plan,
        )
        recoveries: list[float] = []
        recovered_all = True
        for outcome in outcomes:
            if outcome is None:
                recovered_all = False
                continue
            times = recovery_parallel_times(outcome.faults)
            recovered_all = recovered_all and bool(times)
            recoveries.extend(times)
        mean_recovery = summarize(recoveries).mean if recoveries else math.inf
        rows.append(
            {
                "schedule": f"{_cell_label(scheduler)} + {plan.events[0].kind}",
                "protocol": protocol,
                "n": n,
                "mean parallel time": mean_recovery,
                "inflation vs uniform": None,
                "consistent": recovered_all,
            }
        )

    notes = [
        f"{scaled([SCHEDULE_TRIALS], scale)[0]} trials per cell; uniform "
        "baselines share (protocol, n) with the weighted/graph cells",
        "weighted cells run on the size-resolved count-level engine via "
        "proposal thinning (repro.schedulers.weighted); graph cells "
        "degrade to the per-agent engine and record degraded_from",
        "graph cells run fast-nonce with bits=48: PLL and Angluin cannot "
        "stabilize on sparse interaction graphs (leader elimination "
        "needs meetings the graph never delivers), while the max-nonce "
        "relay elects on any connected graph",
        "recovery rows: mean per-fault recovery parallel time under the "
        "adversarial schedule, measured like E13's fault grid",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
