"""Experiment harness: one module per reproduced paper artifact.

Importing this package registers every experiment; enumerate them with
:func:`~repro.experiments.spec.all_experiments` or run one from the CLI
(``repro run E9``).

Experiments and campaigns
-------------------------

Experiments whose measurements are plain stabilization trials double as
*campaigns* (see :mod:`repro.experiments.campaigns`): the experiment id
maps to a :class:`~repro.orchestration.spec.CampaignSpec` naming every
``(protocol, params, n, seed, engine)`` trial in its grid.

===========  ==========================================================
experiment    campaign contents
===========  ==========================================================
``E1``        Table 1 comparison — every protocol row x n in {32..256}
              x 16 seeds
``E9``        Theorem 1 scaling — PLL x n in {64..2048} x 48 seeds
``E12``       module ablations — PLL variants x n in {64, 256} x 8
              seeds (the m-slack and engine-throughput sections are
              bespoke and stay outside the campaign)
===========  ==========================================================

Completed trials land in a SQLite *trial store* keyed by each spec's
content hash — by default ``.repro-store.sqlite`` in the working
directory, or wherever ``--store`` points.  Because ``repro run`` (with
``--store``) and ``repro campaign run`` build identical specs for
identical grids, they share cache rows: re-running a finished campaign
executes nothing, and an interrupted one resumes where it stopped
(``repro campaign resume``).  The per-lemma experiments (hook-driven
measurements with bespoke predicates) run in-process only.
"""

from repro.experiments import (  # noqa: F401  (import-for-registration)
    ablations,
    lemma2_epidemic,
    lemma3_states,
    lemma5_countup,
    lemma6_sync,
    lemma7_quick_elimination,
    lemma8_tournament,
    lemma12_backup,
    robustness,
    schedules,
    section4_symmetric,
    table1_comparison,
    table2_lower_bounds,
    theorem1_scaling,
)
from repro.experiments.campaigns import campaign_for, campaign_ids
from repro.experiments.runner import (
    TrialOutcome,
    make_simulator,
    stabilization_trials,
)
from repro.experiments.spec import (
    ExperimentResult,
    ExperimentSpec,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "TrialOutcome",
    "all_experiments",
    "campaign_for",
    "campaign_ids",
    "get_experiment",
    "make_simulator",
    "register",
    "run_experiment",
    "stabilization_trials",
]
