"""Experiment harness: one module per reproduced paper artifact.

Importing this package registers every experiment; enumerate them with
:func:`~repro.experiments.spec.all_experiments` or run one from the CLI
(``repro run E9``).
"""

from repro.experiments import (  # noqa: F401  (import-for-registration)
    ablations,
    lemma2_epidemic,
    lemma3_states,
    lemma5_countup,
    lemma6_sync,
    lemma7_quick_elimination,
    lemma8_tournament,
    lemma12_backup,
    robustness,
    section4_symmetric,
    table1_comparison,
    table2_lower_bounds,
    theorem1_scaling,
)
from repro.experiments.runner import (
    TrialOutcome,
    make_simulator,
    stabilization_trials,
)
from repro.experiments.spec import (
    ExperimentResult,
    ExperimentSpec,
    all_experiments,
    get_experiment,
    register,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "TrialOutcome",
    "all_experiments",
    "get_experiment",
    "make_simulator",
    "register",
    "stabilization_trials",
]
