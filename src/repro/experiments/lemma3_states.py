"""E11 — Lemma 3: PLL uses O(log n) states per agent.

Two measurements: the analytic state-space bound derived from Table 3
(:meth:`~repro.core.params.PLLParameters.state_bound`, linear in ``m``)
and the number of *distinct states actually reached* in full runs.  Both
must grow like ``m ~ lg n`` — contrasted against the fast-nonce baseline,
whose reached-state count grows polynomially and whose bound explodes.
"""

from __future__ import annotations

import math

from repro.core.pll import PLLProtocol
from repro.engine.simulator import AgentSimulator
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled
from repro.protocols.fast_nonce import FastNonceProtocol

SPEC = ExperimentSpec(
    id="E11",
    title="State usage audit",
    paper_artifact="Lemma 3 (and Table 3)",
    paper_claim="the number of states per agent used by PLL is O(log n)",
    bench="benchmarks/bench_lemma3_states.py",
)


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = scaled([5], scale)[0]
    headers = [
        "protocol",
        "n",
        "m",
        "Table-3 bound |Q|",
        "bound / m",
        "states reached",
        "reached / m",
    ]
    rows = []
    for n in (16, 64, 256, 1024):
        params = PLLProtocol.for_population(n).params
        reached = 0
        for trial in range(trials):
            sim = AgentSimulator(PLLProtocol.for_population(n), n, seed=seed + trial)
            sim.run_until_stabilized()
            # Keep running one extra color period so late-epoch states and
            # timer phases are fully explored.
            sim.run(30 * params.m * n)
            reached = max(reached, sim.distinct_states_seen())
        bound = params.state_bound()
        rows.append(
            {
                "protocol": "PLL",
                "n": n,
                "m": params.m,
                "Table-3 bound |Q|": bound,
                "bound / m": bound / params.m,
                "states reached": reached,
                "reached / m": reached / params.m,
            }
        )
    # Contrast: the fast-nonce baseline's state count is polynomial in n.
    for n in (16, 64, 256):
        protocol = FastNonceProtocol.for_population(n)
        sim = AgentSimulator(protocol, n, seed=seed)
        sim.run_until_stabilized()
        m = max(1, math.ceil(math.log2(n)))
        rows.append(
            {
                "protocol": protocol.name,
                "n": n,
                "m": m,
                "Table-3 bound |Q|": protocol.state_bound(),
                "bound / m": protocol.state_bound() / m,
                "states reached": sim.distinct_states_seen(),
                "reached / m": sim.distinct_states_seen() / m,
            }
        )
    notes = [
        "PLL's bound/m and reached/m columns must be flat (O(log n) "
        "states); the fast-nonce rows blow up — that contrast is Table 1's "
        "states column",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
