"""E1 — empirical analogue of Table 1 (protocol comparison).

Table 1 lists leader-election protocols by state count and expected
stabilization time.  We measure both for every implemented row: mean
parallel stabilization time across a grid of ``n``, the growth model that
fits the curve best, and the number of distinct states actually reached at
the largest ``n``.  The paper's ordering must reproduce: Angluin is linear
in time but constant in states; the lottery composition is polylog-time;
the fast-nonce baseline and PLL are logarithmic-time, but the former pays
polynomially many states where PLL pays ``O(log n)``.
"""

from __future__ import annotations

from repro.analysis.scaling import fit_scaling
from repro.analysis.stats import summarize
from repro.experiments.runner import stabilization_trials
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E1",
    title="Protocol comparison: states and stabilization time",
    paper_artifact="Table 1",
    paper_claim=(
        "[Ang+06] O(1) states / O(n) time; [Ali+17]-style lottery polylog/"
        "polylog; [MST18]-style O(poly n) states / O(log n) time; "
        "PLL O(log n) states / O(log n) time"
    ),
    bench="benchmarks/bench_table1.py",
)

#: (row label, registry protocol name, paper states, paper time, fit models)
#: — shared with the E1 campaign builder so `repro run E1` and `repro
#: campaign run E1` address the same trial-store rows.
ROWS = (
    (
        "angluin2006 [Ang+06]",
        "angluin",
        "O(1)",
        "O(n)",
        ("log", "linear"),
    ),
    (
        "lottery-backup [Ali+17]-style",
        "lottery",
        "O(log n)",
        "O(log^2 n)",
        ("log", "log^2", "linear"),
    ),
    (
        "fast-nonce [MST18]-style",
        "fast-nonce",
        "O(poly n)",
        "O(log n)",
        ("log", "linear"),
    ),
    (
        "PLL (this work)",
        "pll",
        "O(log n)",
        "O(log n)",
        ("log", "linear"),
    ),
    (
        "PLL symmetric (Sec. 4)",
        "pll-symmetric",
        "O(log n)",
        "O(log n)",
        ("log", "linear"),
    ),
)

#: Population grid, shared with the campaign builder.
NS = [32, 64, 128, 256]
TRIALS = 16


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    ns = NS
    trials = scaled([TRIALS], scale)[0]
    headers = [
        "protocol",
        "paper states",
        "paper time",
        "measured states (n=max)",
        *[f"time n={n}" for n in ns],
        "best fit",
    ]
    rows = []
    for label, protocol_name, paper_states, paper_time, models in ROWS:
        means = []
        states_at_max = 0
        for n in ns:
            outcomes = stabilization_trials(
                protocol_name, n, trials, base_seed=seed
            )
            trials = len(outcomes)  # reflect any --trials override in notes
            means.append(summarize([o.parallel_time for o in outcomes]).mean)
            states_at_max = max(o.distinct_states for o in outcomes)
        fit = fit_scaling(ns, means, models=models)
        row = {
            "protocol": label,
            "paper states": paper_states,
            "paper time": paper_time,
            "measured states (n=max)": states_at_max,
            "best fit": str(fit),
        }
        for n, mean in zip(ns, means):
            row[f"time n={n}"] = mean
        rows.append(row)
    notes = [
        "times are mean parallel stabilization times over "
        f"{trials} trials; 'best fit' is the least-NRMSE model among the "
        "row's candidates",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
