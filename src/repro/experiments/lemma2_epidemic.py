"""E3 — Lemma 2: the sub-population epidemic tail bound.

Lemma 2: for a sub-population ``V'`` of size ``n'`` with root ``r``,
``P(I_{V',r,Gamma}(2 ceil(n/n') t) != V') <= n e^(-t/n)``.

We run the bare epidemic process many times, record completion steps, and
compare the empirical tail frequency at the lemma's step horizons against
the analytic bound for several ``t`` and sub-population fractions.  The
bound is loose by design (it powers union bounds downstream), so measured
frequencies should sit *well below* it — what must never happen is the
empirical value exceeding the bound beyond sampling noise.
"""

from __future__ import annotations

import math

from repro.epidemic.bounds import lemma2_failure_bound, lemma2_steps
from repro.epidemic.epidemic import simulate_epidemic
from repro.experiments.spec import ExperimentResult, ExperimentSpec, register, scaled

SPEC = ExperimentSpec(
    id="E3",
    title="One-way epidemic completion tail vs Lemma 2 bound",
    paper_artifact="Lemma 2",
    paper_claim="P(epidemic in V' incomplete after 2*ceil(n/n')*t steps) <= n*e^(-t/n)",
    bench="benchmarks/bench_lemma2_epidemic.py",
)


@register(SPEC)
def run(scale: float = 1.0, seed: int = 0, n: int = 256) -> ExperimentResult:
    trials = scaled([400], scale)[0]
    headers = [
        "n",
        "n'",
        "t/n",
        "step horizon",
        "empirical P(incomplete)",
        "Lemma 2 bound",
        "consistent",
    ]
    rows = []
    for fraction in (1.0, 0.5, 0.25):
        n_prime = max(1, int(n * fraction))
        members = list(range(n_prime))
        completions = []
        for trial in range(trials):
            result = simulate_epidemic(
                n, root=0, subpopulation=members, seed=seed + trial
            )
            completions.append(result.completion_step)
        for t_over_n in (2.0, 4.0, 8.0):
            t = t_over_n * n
            horizon = lemma2_steps(n, n_prime, t)
            bound = lemma2_failure_bound(n, n_prime, horizon)
            incomplete = sum(
                1 for step in completions if step is None or step > horizon
            )
            frequency = incomplete / trials
            stderr = math.sqrt(max(bound * (1 - bound), 1e-12) / trials)
            rows.append(
                {
                    "n": n,
                    "n'": n_prime,
                    "t/n": t_over_n,
                    "step horizon": horizon,
                    "empirical P(incomplete)": frequency,
                    "Lemma 2 bound": min(bound, 1.0),
                    "consistent": frequency <= min(bound, 1.0) + 3 * stderr + 1e-9,
                }
            )
    notes = [
        f"{trials} epidemic runs per sub-population size; completion steps "
        "reused across all t horizons",
    ]
    return ExperimentResult(
        spec=SPEC, headers=headers, rows=rows, notes=notes, scale=scale, seed=seed
    )
