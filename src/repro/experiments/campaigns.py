"""Campaign builders: experiment ids mapped to declarative trial grids.

``repro campaign run E9`` needs the *work list* behind an experiment
without the aggregation code around it.  The builders here construct a
:class:`~repro.orchestration.spec.CampaignSpec` from the same grid
constants the experiment modules use, so both entry points produce
identical :class:`TrialSpec` content hashes and therefore share trial
store rows: trials simulated by ``repro run E1 --store x`` are cache hits
for ``repro campaign run E1 --store x`` and vice versa.

Only experiments whose measurements are plain stabilization trials have
campaigns (E1, E9, and E12's module-ablation section); the per-lemma
experiments instrument runs with hooks and bespoke predicates, which the
trial store does not model.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ablations,
    robustness,
    schedules,
    table1_comparison,
    theorem1_scaling,
)
from repro.experiments.spec import scaled
from repro.faults.plan import FaultPlan
from repro.orchestration.spec import CampaignSpec, TrialSpec, trial_specs

__all__ = ["campaign_for", "campaign_ids", "canary_specs"]

#: EROB's quarantine canary: a deliberately unconvergeable cell (full
#: scramble of the population with only ~90 interactions of budget
#: left), so every robustness campaign run — including the CI smoke —
#: exercises retry, the failure ledger, and quarantine reporting.  The
#: surrounding grid completes around it; `repro campaign status` shows
#: it as quarantined.
CANARY_N = 256
CANARY_MAX_STEPS = 600
CANARY_FAULT_STEP = 512


def canary_specs(seed: int, engine: str = "auto") -> list[TrialSpec]:
    """The one-trial poison cell appended to every EROB campaign."""
    plan = FaultPlan.create(
        [{"kind": "corrupt", "at_step": CANARY_FAULT_STEP, "count": CANARY_N}]
    )
    return list(
        trial_specs(
            "pll",
            CANARY_N,
            1,
            base_seed=seed,
            engine=engine,
            max_steps=CANARY_MAX_STEPS,
            fault_plan=plan,
        )
    )


def _theorem1_campaign(scale: float, seed: int, engine: str) -> CampaignSpec:
    """E9 — PLL over a doubling grid of n (Theorem 1 scaling).

    From ``scale >= LARGE_N_SCALE`` the campaign carries the large-``n``
    extension cells too (same specs as ``repro run E9`` at that scale,
    so the store rows stay shared).
    """
    ns, trials = theorem1_scaling.grid(scale)
    specs = list(
        CampaignSpec.from_grid(
            "E9", "pll", ns, trials, base_seed=seed, engine=engine
        ).trials
    )
    for n, cell_trials in theorem1_scaling.large_cells(scale):
        specs.extend(
            trial_specs(
                "pll", n, cell_trials, base_seed=seed, engine=engine
            )
        )
    return CampaignSpec(name="E9", trials=tuple(specs))


def _table1_campaign(scale: float, seed: int, engine: str) -> CampaignSpec:
    """E1 — every Table 1 protocol row over the comparison grid."""
    trials = scaled([table1_comparison.TRIALS], scale)[0]
    specs: list[TrialSpec] = []
    for _label, protocol_name, *_rest in table1_comparison.ROWS:
        for n in table1_comparison.NS:
            specs.extend(
                trial_specs(
                    protocol_name,
                    n,
                    trials,
                    base_seed=seed,
                    engine=engine,
                )
            )
    return CampaignSpec(name="E1", trials=tuple(specs))


def _ablations_campaign(scale: float, seed: int, engine: str) -> CampaignSpec:
    """E12 (module section) — PLL variants at two population sizes."""
    trials = scaled([ablations.MODULE_TRIALS], scale)[0]
    specs: list[TrialSpec] = []
    for n in ablations.MODULE_NS:
        for variant in ablations.MODULE_VARIANTS:
            specs.extend(
                trial_specs(
                    "pll",
                    n,
                    trials,
                    base_seed=seed,
                    engine=engine,
                    params={"variant": variant},
                )
            )
    return CampaignSpec(name="E12", trials=tuple(specs))


def _robustness_campaign(scale: float, seed: int, engine: str) -> CampaignSpec:
    """EROB — E13's fault grid (protocol × n × kind × severity) plus the
    quarantine canary.

    Grid specs share hashes (and therefore store rows) with ``repro run
    E13``'s fault section; from ``scale >= LARGE_N_SCALE`` the campaign
    carries the superbatch-scale million-agent cells too.
    """
    specs: list[TrialSpec] = []
    for protocol, n, kind, severity, trials in robustness.fault_grid(scale):
        specs.extend(
            trial_specs(
                protocol,
                n,
                trials,
                base_seed=seed,
                engine=engine,
                fault_plan=robustness.fault_plan_for(n, kind, severity),
            )
        )
    specs.extend(canary_specs(seed, engine))
    return CampaignSpec(name="EROB", trials=tuple(specs))


def _schedules_campaign(scale: float, seed: int, engine: str) -> CampaignSpec:
    """ESCHED — E14's scheduler grid (protocol × n × family × parameter)
    plus the schedule-composed recovery cells.

    Grid specs share hashes (and therefore store rows) with ``repro run
    E14``.  Graph-restricted cells ride the degradation ladder: with
    ``engine="auto"`` they resolve to the per-agent engine and their
    store rows carry ``degraded_from`` (surfaced by ``repro campaign
    status``), while the state-weighted cells keep the size-resolved
    count-level engine.
    """
    specs: list[TrialSpec] = []
    for protocol, params, n, scheduler, trials in schedules.schedule_grid(scale):
        specs.extend(
            trial_specs(
                protocol,
                n,
                trials,
                base_seed=seed,
                engine=engine,
                params=params,
                scheduler=scheduler,
            )
        )
    for protocol, params, n, scheduler, plan, trials in schedules.recovery_cells(
        scale
    ):
        specs.extend(
            trial_specs(
                protocol,
                n,
                trials,
                base_seed=seed,
                engine=engine,
                params=params,
                scheduler=scheduler,
                fault_plan=plan,
            )
        )
    return CampaignSpec(name="ESCHED", trials=tuple(specs))


_BUILDERS: dict[str, Callable[[float, int, str], CampaignSpec]] = {
    "E1": _table1_campaign,
    "E9": _theorem1_campaign,
    "E12": _ablations_campaign,
    "EROB": _robustness_campaign,
    "ESCHED": _schedules_campaign,
}


def campaign_ids() -> list[str]:
    """Experiment ids that have campaign builders."""
    return sorted(_BUILDERS)


def campaign_for(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = 0,
    engine: str = "auto",
) -> CampaignSpec:
    """The campaign behind an experiment id (case-insensitive).

    ``engine="auto"`` (the default) resolves per population size inside
    :func:`~repro.orchestration.spec.trial_specs`: large-``n`` grid
    points run on the batch engine, the rest name the multiset chain —
    which the pool packs into across-trial ensemble lanes whenever a
    cell has enough pending trials.  (PR 3 moved the sub-crossover
    default from the agent engine to multiset to enable that packing;
    stores filled under the old default re-execute on first use.)
    """
    key = experiment_id.upper()
    try:
        builder = _BUILDERS[key]
    except KeyError:
        known = ", ".join(campaign_ids())
        raise ExperimentError(
            f"no campaign for experiment {experiment_id!r}; known: {known}"
        ) from None
    return builder(scale, seed, engine)
